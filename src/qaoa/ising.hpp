/**
 * @file
 * General Ising-model cost Hamiltonians (§VI "Applicability beyond
 * QAOA-MaxCut").
 *
 * Any NP-hard combinatorial problem can be written in the Ising format
 *     C(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j,   s_i in {-1, +1}
 * whose quadratic terms become ZZ-interactions (CPHASE gates) and whose
 * linear terms become single-qubit RZ rotations.  All four compilation
 * methodologies apply unchanged because the CPHASE set is still mutually
 * commuting — this module provides the general builder plus canonical
 * problem encodings (MaxCut, weighted MaxCut, number partitioning,
 * vertex cover via QUBO).
 */

#ifndef QAOA_QAOA_ISING_HPP
#define QAOA_QAOA_ISING_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "graph/graph.hpp"
#include "qaoa/problem.hpp"

namespace qaoa::core {

/**
 * An Ising cost model over n spins.
 *
 * Spin i of an assignment bitmask is s_i = +1 when bit i is 0 and -1
 * when bit i is 1 (the |0> / |1> computational-basis convention).
 */
class IsingModel
{
  public:
    /** Creates a model with all coefficients zero. */
    explicit IsingModel(int num_spins = 0);

    /** Number of spins (qubits). */
    int numSpins() const { return static_cast<int>(linear_.size()); }

    /** Adds @p h to the linear coefficient of spin i. */
    void addLinear(int i, double h);

    /** Adds @p j to the quadratic coefficient of the pair {i, k}. */
    void addQuadratic(int i, int k, double j);

    /** Adds a constant offset (tracked so energies match the problem). */
    void addOffset(double c) { offset_ += c; }

    /** Linear coefficient h_i. */
    double linear(int i) const;

    /** Quadratic coefficient J_ik (0 when absent). */
    double quadratic(int i, int k) const;

    /** Constant offset. */
    double offset() const { return offset_; }

    /** Non-zero quadratic terms as ZZ operations (weight = J). */
    std::vector<ZZOp> quadraticOps() const;

    /** Energy of a computational-basis assignment. */
    double energy(std::uint64_t assignment) const;

    /** Exhaustive minimum over all assignments (numSpins() <= 26). */
    struct GroundState
    {
        double energy = 0.0;
        std::uint64_t assignment = 0;
    };
    GroundState groundState() const;

  private:
    void checkSpin(int i) const;

    std::vector<double> linear_;
    std::vector<ZZOp> quadratic_; ///< weight carries J_ik.
    double offset_ = 0.0;
};

/**
 * Builds the level-p QAOA circuit for an Ising cost Hamiltonian.
 *
 * Per level with angle γ: CPHASE(2γ·J_ik) per quadratic term and
 * RZ(2γ·h_i) per linear term, then the RX(2β) mixer.  The quadratic
 * terms follow @p quad_order (the IP/IC re-ordering hook); pass
 * model.quadraticOps() for the natural order.
 */
circuit::Circuit buildIsingQaoaCircuit(const IsingModel &model,
                                       const std::vector<ZZOp> &quad_order,
                                       const std::vector<double> &gammas,
                                       const std::vector<double> &betas,
                                       bool measure = true);

/** @name Canonical encodings
 * @{ */

/** MaxCut of a (weighted) graph: maximizing the cut == minimizing this
 *  Ising energy. */
IsingModel maxcutToIsing(const graph::Graph &problem);

/**
 * Number partitioning: split the multiset @p numbers into two halves
 * with minimal difference; energy = (sum_i a_i s_i)^2 expanded to Ising
 * form (constant dropped into the offset).
 */
IsingModel partitionToIsing(const std::vector<double> &numbers);

/**
 * Minimum vertex cover via the standard QUBO penalty form:
 *     minimize sum_i x_i + P * sum_{(i,j) in E} (1 - x_i)(1 - x_j)
 * with penalty @p penalty > 1.
 */
IsingModel vertexCoverToIsing(const graph::Graph &problem,
                              double penalty = 2.0);

/** @} */

} // namespace qaoa::core

#endif // QAOA_QAOA_ISING_HPP
