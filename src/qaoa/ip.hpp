/**
 * @file
 * IP — Instruction Parallelization (§IV-B, Fig. 4).
 *
 * Formulates CPHASE re-ordering as binary bin packing: create MOQ empty
 * layers (MOQ = max CPHASE count on any qubit, the lower bound on layer
 * count), rank operations by cumulative qubit activity, and assign them
 * first-fit-decreasing.  Operations that fit nowhere carry into a fresh
 * round (Step 4).  The concatenated layers give the gate order handed to
 * the backend compiler.
 */

#ifndef QAOA_QAOA_IP_HPP
#define QAOA_QAOA_IP_HPP

#include <vector>

#include "common/rng.hpp"
#include "qaoa/problem.hpp"

namespace qaoa::core {

/** Result of instruction parallelization. */
struct IpResult
{
    /** CPHASE layers; within a layer all operations touch disjoint
     *  qubits. */
    std::vector<std::vector<ZZOp>> layers;

    /** Flattened layer-major operation order (the compiler input). */
    std::vector<ZZOp> order;
};

/**
 * Runs the IP heuristic.
 *
 * @param ops           Cost operations of the QAOA circuit.
 * @param num_qubits    Number of logical qubits.
 * @param rng           Orders equal-rank operations randomly (paper
 *                      behavior).
 * @param packing_limit Maximum operations per layer (§V-H); default
 *                      unlimited.
 */
IpResult ipOrder(const std::vector<ZZOp> &ops, int num_qubits, Rng &rng,
                 int packing_limit = 1 << 30);

} // namespace qaoa::core

#endif // QAOA_QAOA_IP_HPP
