/**
 * @file
 * MaxCut evaluation utilities.
 *
 * The approximation ratio metrics (§V-A) need the exact MaxCut optimum of
 * each problem instance; problem sizes in the paper (<= 36 nodes for
 * compilation, <= 15 for hardware runs) keep brute force feasible for the
 * ARG experiments (12 nodes -> 4096 assignments).
 */

#ifndef QAOA_GRAPH_MAXCUT_HPP
#define QAOA_GRAPH_MAXCUT_HPP

#include <cstdint>

#include "graph/graph.hpp"

namespace qaoa::graph {

/** Result of an exact MaxCut search. */
struct MaxCutResult
{
    double value = 0.0;          ///< Optimal cut weight.
    std::uint64_t assignment = 0; ///< One optimal bipartition (bit i = side).
};

/**
 * Cut weight of a bipartition encoded as a bitmask (bit i = side of node i).
 */
double cutValue(const Graph &g, std::uint64_t assignment);

/**
 * Exact MaxCut by exhaustive enumeration.
 *
 * Enumerates 2^(n-1) assignments (node 0 fixed to side 0 by symmetry);
 * practical up to roughly n = 26.
 */
MaxCutResult maxCutBruteForce(const Graph &g);

} // namespace qaoa::graph

#endif // QAOA_GRAPH_MAXCUT_HPP
