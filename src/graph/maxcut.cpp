#include "graph/maxcut.hpp"

#include "common/error.hpp"

namespace qaoa::graph {

double
cutValue(const Graph &g, std::uint64_t assignment)
{
    double total = 0.0;
    for (const Edge &e : g.edges()) {
        bool su = (assignment >> e.u) & 1ULL;
        bool sv = (assignment >> e.v) & 1ULL;
        if (su != sv)
            total += e.weight;
    }
    return total;
}

MaxCutResult
maxCutBruteForce(const Graph &g)
{
    const int n = g.numNodes();
    QAOA_CHECK(n <= 26, "brute-force MaxCut limited to 26 nodes, got " << n);
    MaxCutResult best;
    if (n == 0)
        return best;
    const std::uint64_t count = 1ULL << (n - 1); // node 0 fixed by symmetry
    for (std::uint64_t a = 0; a < count; ++a) {
        double v = cutValue(g, a << 1);
        if (v > best.value) {
            best.value = v;
            best.assignment = a << 1;
        }
    }
    return best;
}

} // namespace qaoa::graph
