/**
 * @file
 * Undirected (optionally edge-weighted) graph.
 *
 * Used both for QAOA problem graphs (MaxCut instances) and for hardware
 * coupling graphs.  Node ids are dense integers 0..n-1.
 */

#ifndef QAOA_GRAPH_GRAPH_HPP
#define QAOA_GRAPH_GRAPH_HPP

#include <utility>
#include <vector>

namespace qaoa::graph {

/** An undirected edge with an optional weight (defaults to 1.0). */
struct Edge
{
    int u = 0;
    int v = 0;
    double weight = 1.0;

    /** Lexicographic comparison on (min endpoint, max endpoint). */
    bool operator==(const Edge &other) const
    {
        return u == other.u && v == other.v && weight == other.weight;
    }
};

/**
 * Simple undirected graph with adjacency lists and an edge list.
 *
 * Self loops and parallel edges are rejected.  Edges are stored with
 * u < v internally so iteration order is canonical.
 */
class Graph
{
  public:
    /** Creates an empty graph with @p num_nodes isolated nodes. */
    explicit Graph(int num_nodes = 0);

    /** Number of nodes. */
    int numNodes() const { return static_cast<int>(adjacency_.size()); }

    /** Number of edges. */
    int numEdges() const { return static_cast<int>(edges_.size()); }

    /**
     * Adds the undirected edge {u, v}.
     *
     * @param u First endpoint (0 <= u < numNodes()).
     * @param v Second endpoint, v != u.
     * @param weight Edge weight, must be finite.
     * @throws std::runtime_error on self loops, duplicate or out-of-range
     *         edges.
     */
    void addEdge(int u, int v, double weight = 1.0);

    /** True if {u, v} is an edge. */
    bool hasEdge(int u, int v) const;

    /** Weight of edge {u, v}; throws if the edge does not exist. */
    double edgeWeight(int u, int v) const;

    /** Degree of node @p u. */
    int degree(int u) const;

    /** Neighbors of node @p u (unordered, no duplicates). */
    const std::vector<int> &neighbors(int u) const;

    /** All edges with u < v, in insertion order. */
    const std::vector<Edge> &edges() const { return edges_; }

    /** Sum of all node degrees / 2 equals numEdges(); max degree helper. */
    int maxDegree() const;

    /** True when every pair of nodes is joined by some path. */
    bool isConnected() const;

  private:
    void checkNode(int u) const;

    std::vector<std::vector<int>> adjacency_;
    std::vector<Edge> edges_;
};

/**
 * Connected components of @p g, largest first (ties broken by smallest
 * member node).  Every node appears in exactly one component; the node
 * lists are sorted ascending.
 */
std::vector<std::vector<int>> connectedComponents(const Graph &g);

/**
 * Nodes of the largest connected component of @p g, sorted ascending.
 * Empty graph yields an empty list.
 */
std::vector<int> largestComponent(const Graph &g);

} // namespace qaoa::graph

#endif // QAOA_GRAPH_GRAPH_HPP
