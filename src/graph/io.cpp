#include "graph/io.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace qaoa::graph {

Graph
readEdgeList(std::istream &in)
{
    std::string line;
    int num_nodes = -1;
    Graph g;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and whitespace-only lines.
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream fields(line);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue; // blank or comment-only line
        if (num_nodes < 0) {
            int header = -1;
            QAOA_CHECK(static_cast<bool>(fields >> header) && header >= 0,
                       "line " << line_no
                               << ": expected node-count header");
            num_nodes = header;
            g = Graph(num_nodes);
            continue;
        }
        int u = 0, v = 0;
        QAOA_CHECK(static_cast<bool>(fields >> u >> v),
                   "line " << line_no << ": expected '<u> <v> [weight]'");
        double w = 1.0;
        fields >> w; // optional weight
        g.addEdge(u, v, w);
    }
    QAOA_CHECK(num_nodes >= 0, "edge list missing node-count header");
    return g;
}

Graph
parseEdgeList(const std::string &text)
{
    std::istringstream in(text);
    return readEdgeList(in);
}

std::string
writeEdgeList(const Graph &g)
{
    std::ostringstream os;
    // max_digits10 so a write/parse round trip preserves weights
    // bit-for-bit (default precision drops digits past the 6th).
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "# qaoa-compiler edge list: <num_nodes> then <u> <v> [weight]\n";
    os << g.numNodes() << "\n";
    for (const Edge &e : g.edges()) {
        os << e.u << " " << e.v;
        if (e.weight != 1.0)
            os << " " << e.weight;
        os << "\n";
    }
    return os.str();
}

Graph
loadGraphFile(const std::string &path)
{
    std::ifstream in(path);
    QAOA_CHECK(in.good(), "cannot open graph file: " << path);
    return readEdgeList(in);
}

void
saveGraphFile(const Graph &g, const std::string &path)
{
    // User-requested export to a path the caller owns, not service
    // state — torn output on crash is acceptable. qs-allow(QS002)
    std::ofstream out(path);
    QAOA_CHECK(out.good(), "cannot write graph file: " << path);
    out << writeEdgeList(g);
    QAOA_CHECK(out.good(), "write failed: " << path);
}

} // namespace qaoa::graph
