#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "common/error.hpp"

namespace qaoa::graph {

Graph
erdosRenyi(int n, double p, Rng &rng)
{
    QAOA_CHECK(n >= 0, "negative node count");
    QAOA_CHECK(p >= 0.0 && p <= 1.0, "edge probability " << p
                                                         << " outside [0,1]");
    Graph g(n);
    for (int u = 0; u < n; ++u)
        for (int v = u + 1; v < n; ++v)
            if (rng.bernoulli(p))
                g.addEdge(u, v);
    return g;
}

Graph
randomGnm(int n, int m, Rng &rng)
{
    const long long max_edges =
        static_cast<long long>(n) * (n - 1) / 2;
    QAOA_CHECK(m >= 0 && m <= max_edges,
               "cannot place " << m << " edges on " << n << " nodes");
    Graph g(n);
    std::set<std::pair<int, int>> chosen;
    while (static_cast<int>(chosen.size()) < m) {
        int u = rng.uniformInt(0, n - 1);
        int v = rng.uniformInt(0, n - 1);
        if (u == v)
            continue;
        if (u > v)
            std::swap(u, v);
        if (chosen.insert({u, v}).second)
            g.addEdge(u, v);
    }
    return g;
}

namespace {

/**
 * One attempt of the configuration model with stub re-matching.
 *
 * Instead of rejecting the whole pairing on the first self loop or
 * parallel edge (which almost never succeeds for k >= 6), illegal pairs
 * return their stubs to the pool and are re-shuffled; the attempt fails
 * only when a pass makes no progress.
 */
bool
tryPairing(int n, int k, Rng &rng, Graph &out)
{
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * k);
    for (int u = 0; u < n; ++u)
        for (int c = 0; c < k; ++c)
            stubs.push_back(u);

    Graph g(n);
    std::set<std::pair<int, int>> seen;
    while (!stubs.empty()) {
        rng.shuffle(stubs);
        std::vector<int> leftover;
        for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
            int u = stubs[i], v = stubs[i + 1];
            if (u > v)
                std::swap(u, v);
            if (u == v || !seen.insert({u, v}).second) {
                leftover.push_back(stubs[i]);
                leftover.push_back(stubs[i + 1]);
                continue;
            }
            g.addEdge(u, v);
        }
        if (leftover.size() == stubs.size())
            return false; // stuck: no legal pair left in this attempt
        stubs = std::move(leftover);
    }
    out = std::move(g);
    return true;
}

} // namespace

Graph
randomRegular(int n, int k, Rng &rng)
{
    QAOA_CHECK(k >= 0 && k < n, "degree " << k << " invalid for n=" << n);
    QAOA_CHECK((static_cast<long long>(n) * k) % 2 == 0,
               "n*k must be even for a " << k << "-regular graph on " << n
                                         << " nodes");
    if (k == 0)
        return Graph(n);
    // Rejection sampling over the configuration model.  Success probability
    // per attempt is bounded away from zero for the k << n regimes the
    // paper uses (k <= 8, n >= 12); cap attempts as a safety net.
    constexpr int max_attempts = 20000;
    Graph g(n);
    for (int attempt = 0; attempt < max_attempts; ++attempt)
        if (tryPairing(n, k, rng, g))
            return g;
    QAOA_CHECK(false, "configuration model failed to produce a simple "
                          << k << "-regular graph on " << n << " nodes");
    return g; // unreachable
}

Graph
pathGraph(int n)
{
    Graph g(n);
    for (int u = 0; u + 1 < n; ++u)
        g.addEdge(u, u + 1);
    return g;
}

Graph
cycleGraph(int n)
{
    QAOA_CHECK(n == 0 || n >= 3, "cycle needs at least 3 nodes");
    Graph g = pathGraph(n);
    if (n >= 3)
        g.addEdge(n - 1, 0);
    return g;
}

Graph
completeGraph(int n)
{
    Graph g(n);
    for (int u = 0; u < n; ++u)
        for (int v = u + 1; v < n; ++v)
            g.addEdge(u, v);
    return g;
}

Graph
gridGraph(int rows, int cols)
{
    QAOA_CHECK(rows >= 0 && cols >= 0, "negative grid dimension");
    Graph g(rows * cols);
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                g.addEdge(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                g.addEdge(id(r, c), id(r + 1, c));
        }
    }
    return g;
}

} // namespace qaoa::graph
