#include "graph/shortest_paths.hpp"

#include <queue>

#include "common/error.hpp"

namespace qaoa::graph {

std::vector<double>
bfsDistances(const Graph &g, int source)
{
    QAOA_CHECK(source >= 0 && source < g.numNodes(),
               "BFS source " << source << " out of range");
    std::vector<double> dist(static_cast<std::size_t>(g.numNodes()),
                             kInfDistance);
    std::queue<int> frontier;
    dist[static_cast<std::size_t>(source)] = 0.0;
    frontier.push(source);
    while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop();
        for (int v : g.neighbors(u)) {
            auto vi = static_cast<std::size_t>(v);
            if (dist[vi] == kInfDistance) {
                dist[vi] = dist[static_cast<std::size_t>(u)] + 1.0;
                frontier.push(v);
            }
        }
    }
    return dist;
}

DistanceMatrix
floydWarshall(const Graph &g, bool weighted, NextHopMatrix *next_out)
{
    const int n = g.numNodes();
    DistanceMatrix dist(static_cast<std::size_t>(n),
                        std::vector<double>(static_cast<std::size_t>(n),
                                            kInfDistance));
    NextHopMatrix next;
    if (next_out)
        next.assign(static_cast<std::size_t>(n),
                    std::vector<int>(static_cast<std::size_t>(n), -1));

    for (int u = 0; u < n; ++u) {
        dist[u][u] = 0.0;
        if (next_out)
            next[u][u] = u;
    }
    for (const Edge &e : g.edges()) {
        double w = weighted ? e.weight : 1.0;
        QAOA_CHECK(w >= 0.0, "negative edge weight in shortest paths");
        dist[e.u][e.v] = w;
        dist[e.v][e.u] = w;
        if (next_out) {
            next[e.u][e.v] = e.v;
            next[e.v][e.u] = e.u;
        }
    }
    for (int k = 0; k < n; ++k) {
        for (int i = 0; i < n; ++i) {
            if (dist[i][k] == kInfDistance)
                continue;
            for (int j = 0; j < n; ++j) {
                double via = dist[i][k] + dist[k][j];
                if (via < dist[i][j]) {
                    dist[i][j] = via;
                    if (next_out)
                        next[i][j] = next[i][k];
                }
            }
        }
    }
    if (next_out)
        *next_out = std::move(next);
    return dist;
}

std::vector<int>
reconstructPath(const NextHopMatrix &next, int u, int v)
{
    const int n = static_cast<int>(next.size());
    QAOA_CHECK(u >= 0 && u < n && v >= 0 && v < n,
               "path endpoints out of range");
    if (next[u][v] < 0)
        return {};
    std::vector<int> path{u};
    int cur = u;
    while (cur != v) {
        cur = next[cur][v];
        QAOA_ASSERT(cur >= 0, "broken next-hop chain");
        path.push_back(cur);
        QAOA_ASSERT(static_cast<int>(path.size()) <= n,
                    "next-hop cycle detected");
    }
    return path;
}

} // namespace qaoa::graph
