/**
 * @file
 * Shortest-path utilities: BFS hop distances and Floyd–Warshall all-pairs
 * distances (hop-count or edge-weighted), plus next-hop recovery for SWAP
 * routing.
 *
 * The paper's QAIM/IC passes use hop distances; VIC (§IV-D) reruns
 * Floyd–Warshall with edge weights 1/R where R is the 2-qubit success rate.
 */

#ifndef QAOA_GRAPH_SHORTEST_PATHS_HPP
#define QAOA_GRAPH_SHORTEST_PATHS_HPP

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace qaoa::graph {

/** Dense distance matrix; dist[u][v] is +inf for unreachable pairs. */
using DistanceMatrix = std::vector<std::vector<double>>;

/** next[u][v] = first node after u on a shortest u->v path (-1 if none). */
using NextHopMatrix = std::vector<std::vector<int>>;

/** Value used for unreachable pairs. */
inline constexpr double kInfDistance =
    std::numeric_limits<double>::infinity();

/** BFS hop distances from @p source; unreachable nodes get kInfDistance. */
std::vector<double> bfsDistances(const Graph &g, int source);

/**
 * All-pairs shortest paths via Floyd–Warshall.
 *
 * @param g        Input graph.
 * @param weighted When true, uses edge weights; otherwise every edge
 *                 contributes hop cost 1.
 * @param next_out Optional next-hop matrix for path reconstruction.
 */
DistanceMatrix floydWarshall(const Graph &g, bool weighted = false,
                             NextHopMatrix *next_out = nullptr);

/**
 * Reconstructs one shortest path u -> v from a next-hop matrix.
 *
 * @return Node sequence including both endpoints; empty when unreachable.
 */
std::vector<int> reconstructPath(const NextHopMatrix &next, int u, int v);

} // namespace qaoa::graph

#endif // QAOA_GRAPH_SHORTEST_PATHS_HPP
