#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"

namespace qaoa::graph {

Graph::Graph(int num_nodes)
{
    QAOA_CHECK(num_nodes >= 0, "negative node count " << num_nodes);
    adjacency_.resize(static_cast<std::size_t>(num_nodes));
}

void
Graph::checkNode(int u) const
{
    QAOA_CHECK(u >= 0 && u < numNodes(),
               "node " << u << " out of range [0, " << numNodes() << ")");
}

void
Graph::addEdge(int u, int v, double weight)
{
    checkNode(u);
    checkNode(v);
    QAOA_CHECK(u != v, "self loop on node " << u);
    QAOA_CHECK(!hasEdge(u, v), "duplicate edge {" << u << ", " << v << "}");
    QAOA_CHECK(std::isfinite(weight), "non-finite edge weight");
    if (u > v)
        std::swap(u, v);
    edges_.push_back({u, v, weight});
    adjacency_[static_cast<std::size_t>(u)].push_back(v);
    adjacency_[static_cast<std::size_t>(v)].push_back(u);
}

bool
Graph::hasEdge(int u, int v) const
{
    checkNode(u);
    checkNode(v);
    const auto &adj = adjacency_[static_cast<std::size_t>(u)];
    return std::find(adj.begin(), adj.end(), v) != adj.end();
}

double
Graph::edgeWeight(int u, int v) const
{
    if (u > v)
        std::swap(u, v);
    for (const Edge &e : edges_)
        if (e.u == u && e.v == v)
            return e.weight;
    QAOA_CHECK(false, "edge {" << u << ", " << v << "} not found");
    return 0.0; // unreachable
}

int
Graph::degree(int u) const
{
    checkNode(u);
    return static_cast<int>(adjacency_[static_cast<std::size_t>(u)].size());
}

const std::vector<int> &
Graph::neighbors(int u) const
{
    checkNode(u);
    return adjacency_[static_cast<std::size_t>(u)];
}

int
Graph::maxDegree() const
{
    int best = 0;
    for (int u = 0; u < numNodes(); ++u)
        best = std::max(best, degree(u));
    return best;
}

bool
Graph::isConnected() const
{
    if (numNodes() <= 1)
        return true;
    std::vector<bool> seen(static_cast<std::size_t>(numNodes()), false);
    std::queue<int> frontier;
    frontier.push(0);
    seen[0] = true;
    int visited = 1;
    while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop();
        for (int v : neighbors(u)) {
            if (!seen[static_cast<std::size_t>(v)]) {
                seen[static_cast<std::size_t>(v)] = true;
                ++visited;
                frontier.push(v);
            }
        }
    }
    return visited == numNodes();
}

std::vector<std::vector<int>>
connectedComponents(const Graph &g)
{
    std::vector<std::vector<int>> components;
    std::vector<bool> seen(static_cast<std::size_t>(g.numNodes()), false);
    for (int start = 0; start < g.numNodes(); ++start) {
        if (seen[static_cast<std::size_t>(start)])
            continue;
        std::vector<int> component;
        std::queue<int> frontier;
        frontier.push(start);
        seen[static_cast<std::size_t>(start)] = true;
        while (!frontier.empty()) {
            int u = frontier.front();
            frontier.pop();
            component.push_back(u);
            for (int v : g.neighbors(u)) {
                if (!seen[static_cast<std::size_t>(v)]) {
                    seen[static_cast<std::size_t>(v)] = true;
                    frontier.push(v);
                }
            }
        }
        std::sort(component.begin(), component.end());
        components.push_back(std::move(component));
    }
    // Largest first; equal sizes keep discovery (smallest-member) order.
    std::stable_sort(components.begin(), components.end(),
                     [](const std::vector<int> &a, const std::vector<int> &b) {
                         return a.size() > b.size();
                     });
    return components;
}

std::vector<int>
largestComponent(const Graph &g)
{
    std::vector<std::vector<int>> components = connectedComponents(g);
    if (components.empty())
        return {};
    return components.front();
}

} // namespace qaoa::graph
