/**
 * @file
 * Plain-text edge-list graph I/O.
 *
 * Format (one record per line, '#' comments allowed):
 *     <num_nodes>
 *     <u> <v> [weight]
 *     ...
 * Used by the CLI tool and for checking benchmark workloads into files.
 */

#ifndef QAOA_GRAPH_IO_HPP
#define QAOA_GRAPH_IO_HPP

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace qaoa::graph {

/** Parses an edge list from a stream; throws on malformed input. */
Graph readEdgeList(std::istream &in);

/** Parses an edge list from a string. */
Graph parseEdgeList(const std::string &text);

/** Serializes to the edge-list format (round-trips with readEdgeList). */
std::string writeEdgeList(const Graph &g);

/** Loads a graph from a file; throws when unreadable. */
Graph loadGraphFile(const std::string &path);

/** Saves a graph to a file; throws when unwritable. */
void saveGraphFile(const Graph &g, const std::string &path);

} // namespace qaoa::graph

#endif // QAOA_GRAPH_IO_HPP
