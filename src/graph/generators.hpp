/**
 * @file
 * Random and structured graph generators for problem and hardware graphs.
 *
 * The paper's evaluation (§V-B) draws MaxCut instances from Erdős–Rényi
 * G(n, p) graphs with edge probability 0.1–0.6 and from random k-regular
 * graphs with 3–8 edges/node; hardware topologies include linear chains,
 * rings (the 8-qubit cyclic comparison of §VI) and an NxM grid (the
 * hypothetical 36-qubit 6x6 device).
 */

#ifndef QAOA_GRAPH_GENERATORS_HPP
#define QAOA_GRAPH_GENERATORS_HPP

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace qaoa::graph {

/** Erdős–Rényi G(n, p): each of the C(n,2) edges included w.p. p. */
Graph erdosRenyi(int n, double p, Rng &rng);

/** G(n, m): exactly m distinct edges chosen uniformly at random. */
Graph randomGnm(int n, int m, Rng &rng);

/**
 * Random k-regular graph via the configuration (pairing) model.
 *
 * Retries until a simple pairing is found; n*k must be even and k < n.
 */
Graph randomRegular(int n, int k, Rng &rng);

/** Path 0-1-...-(n-1). */
Graph pathGraph(int n);

/** Cycle 0-1-...-(n-1)-0. */
Graph cycleGraph(int n);

/** Complete graph on n nodes. */
Graph completeGraph(int n);

/** rows x cols grid with 4-neighbor connectivity, row-major node ids. */
Graph gridGraph(int rows, int cols);

} // namespace qaoa::graph

#endif // QAOA_GRAPH_GENERATORS_HPP
