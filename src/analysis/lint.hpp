/**
 * @file
 * QL rule engine: static quality lints over a physical circuit.
 *
 * The warning-severity rules (QL101-QL107, QL111) flag structure a
 * quality-preserving compiler should never emit — gates that merge,
 * cancel, or only relabel qubits, and crosstalk-conflicting layers.  The
 * info-severity rules (QL108-QL110, QL112-QL114) are advisory cost-model
 * signals: routing over an unreliable edge when the mapping offered a
 * strictly better alternative, idle windows and active windows large
 * against T2, depth hotspots, low layer occupancy, and SWAP overhead.
 * All rules share one CircuitDag traversal plus one timing sweep.
 */

#ifndef QAOA_ANALYSIS_LINT_HPP
#define QAOA_ANALYSIS_LINT_HPP

#include <utility>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/timing.hpp"
#include "circuit/circuit.hpp"
#include "hardware/calibration.hpp"
#include "hardware/coupling_map.hpp"

namespace qaoa::analysis {

/** An undirected coupling edge {a, b} on physical qubits. */
using Coupling = std::pair<int, int>;

/** A pair of couplings that must not drive two-qubit gates
 *  simultaneously (§VI; Murali et al.). */
struct CrosstalkPair
{
    Coupling first;
    Coupling second;
};

/** Knobs of the rule engine; defaults match the CI quality bar. */
struct LintOptions
{
    /** Device topology; enables QL108 when set with calibration. */
    const hw::CouplingMap *map = nullptr;

    /** Calibration; supplies per-qubit T2 and edge reliabilities. */
    const hw::CalibrationData *calibration = nullptr;

    /** Crosstalk-prone coupling pairs; enables QL111 when non-empty. */
    std::vector<CrosstalkPair> crosstalk_pairs;

    /** Durations for the timing-derived rules (QL109/QL110). */
    GateDurations durations{};

    /** Fallback T2 when no calibration is given. */
    double t2_ns = 70000.0;

    /** QL107: |angle mod 2pi| below this is a zero rotation. */
    double zero_angle_eps = 1.0e-9;

    /** QL109: idle window longer than this fraction of the qubit's T2. */
    double idle_budget_fraction = 0.02;

    /** QL110: active window longer than this fraction of the T2. */
    double exposure_budget_fraction = 0.25;

    /** QL112: chain length >= fraction * depth marks a hotspot qubit
     *  (and must also be >= twice the mean chain length). */
    double hotspot_fraction = 0.95;

    /** QL112/QL113: circuits shallower than this are exempt. */
    int min_depth = 8;

    /** QL113: mean gates per layer below this floor is low parallelism. */
    double parallelism_floor = 1.5;

    /** QL114: swap-count / other-2q-count ratio above this threshold. */
    double swap_overhead_ratio = 1.0;
};

/**
 * Counts concurrently scheduled two-qubit gate pairs landing on a
 * conflicting coupling pair (ASAP layers); one finding per clash.
 * transpiler::countCrosstalkViolations() is this size.
 */
std::vector<Finding> findCrosstalkClashes(const circuit::Circuit &physical,
                                          const std::vector<CrosstalkPair>
                                              &pairs);

/**
 * Runs every applicable QL rule over @p physical.
 *
 * Rules needing hardware context (QL108, QL111) silently skip when the
 * corresponding option is absent.  Findings carry the rule's default
 * severity; QL115 is never produced here (budgets are checked by
 * checkBudget()).
 */
LintReport lintCircuit(const circuit::Circuit &physical,
                       const LintOptions &options = {});

} // namespace qaoa::analysis

#endif // QAOA_ANALYSIS_LINT_HPP
