/**
 * @file
 * ESP cost model: estimated success probability with attribution.
 *
 * §II defines the success probability of a circuit as the product of the
 * success rates (1 - error) of its gates under the device calibration;
 * Figs. 10-11 rank the compilation methods by it.  This pass computes
 * that product together with the attribution the bare number hides:
 * which gate class (1q / 2q / readout) and which physical qubit carry
 * the loss.  Two-qubit gates split their success rate sqrt-evenly across
 * both operands so the per-qubit factors multiply back to the total.
 *
 * This is the one ESP model of the codebase; sim/success.hpp forwards
 * here for backwards compatibility.
 */

#ifndef QAOA_ANALYSIS_ESP_HPP
#define QAOA_ANALYSIS_ESP_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "hardware/calibration.hpp"

namespace qaoa::analysis {

/**
 * Error rate of one physical gate under the calibration.
 *
 * Gate cost model (IBM-style):
 *  - U1 / BARRIER: error-free (virtual Z rotation / scheduling marker);
 *  - other single-qubit gates: the qubit's 1q error rate;
 *  - CNOT: the edge's CNOT error;
 *  - CPHASE / CZ: two CNOTs -> 1 - (1-e)^2;
 *  - SWAP: three CNOTs -> 1 - (1-e)^3;
 *  - MEASURE: the qubit's readout error.
 *
 * The gate must act on physical qubits (two-qubit gates on coupled
 * pairs).
 */
double gateErrorRate(const circuit::Gate &g,
                     const hw::CalibrationData &calib);

/** ESP of a circuit, decomposed by gate class and by qubit. */
struct EspBreakdown
{
    double total = 1.0;     ///< Product over all gates; the Fig. 10/11 metric.
    double one_qubit = 1.0; ///< Factor from 1q gates (RZ/Z included).
    double two_qubit = 1.0; ///< Factor from CNOT/CPHASE/CZ/SWAP.
    double readout = 1.0;   ///< Factor from MEASURE gates.

    /** Per-qubit attribution; the product over qubits equals total up to
     *  rounding (2q gates contribute sqrt(1-e) to each operand). */
    std::vector<double> per_qubit;

    int one_qubit_gates = 0; ///< Non-virtual 1q gates counted.
    int two_qubit_gates = 0;
    int measurements = 0;
};

/**
 * Computes the ESP breakdown of @p physical under @p calib.
 *
 * The total is accumulated in gate order, so it matches the historical
 * sim::successProbability() value bit-for-bit.
 */
EspBreakdown estimateEsp(const circuit::Circuit &physical,
                         const hw::CalibrationData &calib);

} // namespace qaoa::analysis

#endif // QAOA_ANALYSIS_ESP_HPP
