/**
 * @file
 * Quality budgets: explicit bars a compiled circuit must clear.
 *
 * A budget is the CI contract for one (method, device) cell: maximum
 * depth / gate counts / execution time and minimum ESP or coherence.
 * Budgets live in checked-in JSON files (under tests/budgets/) written
 * by measuring the current compiler and adding headroom, so any future
 * change that regresses a paper metric (Figs. 7-11) fails the
 * quality-budget CI job with a QL115 finding naming the missed bar.
 */

#ifndef QAOA_ANALYSIS_BUDGET_HPP
#define QAOA_ANALYSIS_BUDGET_HPP

#include <string>

#include "analysis/diagnostics.hpp"

namespace qaoa::analysis {

struct QualitySummary;

/**
 * Bars for one compiled circuit; negative values mean "no bar".
 *
 * Counts are doubles so the JSON loader stays uniform; they are compared
 * with >= / <= directly.
 */
struct QualityBudget
{
    std::string name;    ///< Free-form label (e.g. "vic@ibmq_20_tokyo").
    double max_depth = -1.0;
    double max_gate_count = -1.0;
    double max_two_qubit_gates = -1.0;
    double max_swap_count = -1.0;
    double max_execution_ns = -1.0;
    double min_esp = -1.0;
    double min_coherence = -1.0;

    /**
     * Wall-clock compile-time bar in milliseconds ("compile_ms" in the
     * JSON).  Only enforced when the summary actually recorded a
     * compile time (QualitySummary::compile_ms >= 0) — analyzer-only
     * runs (qaoa_lint on a QASM file) have none and always pass.
     */
    double max_compile_ms = -1.0;
};

/**
 * Parses a flat JSON object {"key": value, ...} into a budget.
 *
 * Accepted keys: "name" (string) plus the numeric bars above; unknown
 * keys throw (typos must not silently weaken CI).  No external JSON
 * dependency: the accepted grammar is exactly one flat object with
 * string or number values.
 */
QualityBudget parseBudget(const std::string &json);

/** Reads and parses a budget file. @throws on I/O or parse errors. */
QualityBudget loadBudgetFile(const std::string &path);

/**
 * Checks @p summary against @p budget; one QL115 error per missed bar.
 *
 * @return Report holding only BudgetViolation findings (empty = pass).
 */
LintReport checkBudget(const QualitySummary &summary,
                       const QualityBudget &budget);

} // namespace qaoa::analysis

#endif // QAOA_ANALYSIS_BUDGET_HPP
