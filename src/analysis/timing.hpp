/**
 * @file
 * Timing/criticality pass: ASAP schedule under per-gate-class durations.
 *
 * §II and §V-A connect circuit depth to execution time and decoherence
 * ("a higher-depth circuit is more susceptible to decoherence errors").
 * This pass makes the connection quantitative and attributable: one
 * schedule sweep yields the makespan, the chain of gates on the critical
 * path, per-qubit busy/idle windows, and a T1/T2 decoherence-exposure
 * factor — per-qubit exp(-busy/T2 - idle/T1), i.e. dephasing over the
 * active window plus amplitude damping over the idle gaps inside it.
 * Per-qubit T1/T2 come from the device calibration when one is supplied.
 *
 * This is the one timing model of the codebase; metrics/timing.hpp
 * forwards here for backwards compatibility.
 */

#ifndef QAOA_ANALYSIS_TIMING_HPP
#define QAOA_ANALYSIS_TIMING_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "hardware/calibration.hpp"

namespace qaoa::analysis {

/** Per-gate-class durations in nanoseconds (IBM-era defaults). */
struct GateDurations
{
    double one_qubit_ns = 50.0;  ///< U2/U3 and other 1q pulses.
    double virtual_ns = 0.0;     ///< U1/RZ/Z (frame change, free).
    double two_qubit_ns = 300.0; ///< CNOT and other 2q pulses.
    double measure_ns = 1000.0;  ///< Readout.

    /** Duration of one gate under this model (BARRIER = 0). */
    double of(const circuit::Gate &g) const;
};

/** Inputs of the timing pass. */
struct TimingOptions
{
    GateDurations durations{};

    /** Fallback relaxation/dephasing constants when no calibration (or
     *  one without per-qubit values) is given. */
    double t1_ns = 90000.0;
    double t2_ns = 70000.0;

    /** Per-qubit T1/T2 source; nullptr uses the fallbacks above. */
    const hw::CalibrationData *calibration = nullptr;
};

/** One gap between consecutive operations on a qubit. */
struct IdleWindow
{
    int qubit = 0;
    double start_ns = 0.0; ///< Finish of the earlier gate.
    double end_ns = 0.0;   ///< Start of the later gate.
    int before_gate = -1;  ///< Gate index whose start closes the window.

    double length_ns() const { return end_ns - start_ns; }
};

/** Schedule-derived activity of one qubit. */
struct QubitActivity
{
    double first_busy_ns = -1.0; ///< Start of first gate; -1 = never used.
    double last_busy_ns = 0.0;   ///< Finish of last gate.
    double busy_ns = 0.0;        ///< Sum of gate durations on the qubit.
    double idle_ns = 0.0;        ///< Sum of idle gaps inside the window.
    int gate_count = 0;          ///< Non-BARRIER gates touching the qubit.

    /** Active window (first gate start to last gate finish). */
    double windowNs() const
    {
        return first_busy_ns < 0.0 ? 0.0 : last_busy_ns - first_busy_ns;
    }
};

/** Output of analyzeTiming(). */
struct TimingAnalysis
{
    double makespan_ns = 0.0; ///< Critical-path execution time.

    /** Per-gate ASAP start/finish (BARRIERs are zero-width events at the
     *  synchronization frontier). */
    std::vector<double> start_ns;
    std::vector<double> finish_ns;

    /** Gate indices on one critical path, in time order (no BARRIERs). */
    std::vector<int> critical_path;

    std::vector<QubitActivity> qubits; ///< Indexed by qubit.
    std::vector<IdleWindow> idle_windows; ///< All gaps, program order.

    /** Per-qubit decoherence-exposure factor
     *  exp(-window/T2 - idle/T1) in (0, 1]; idle qubits get 1. */
    std::vector<double> coherence;

    /** Product of the per-qubit factors — the decoherence-limited
     *  fidelity estimate that complements the gate-error ESP. */
    double coherence_factor = 1.0;
};

/** Runs the schedule sweep; O(gates + qubits). */
TimingAnalysis analyzeTiming(const circuit::Circuit &circuit,
                             const TimingOptions &options = {});

/**
 * Critical-path execution time in nanoseconds (convenience wrapper over
 * analyzeTiming; barriers synchronize).
 */
double executionTimeNs(const circuit::Circuit &circuit,
                       const GateDurations &durations = {});

/**
 * Legacy decoherence estimate: product over qubits of exp(-w_q / T2)
 * where w_q is the qubit's busy window.  Equivalent to analyzeTiming
 * with T1 = ∞.  @throws std::runtime_error when t2_ns <= 0.
 */
double decoherenceFactor(const circuit::Circuit &circuit,
                         double t2_ns = 70000.0,
                         const GateDurations &durations = {});

} // namespace qaoa::analysis

#endif // QAOA_ANALYSIS_TIMING_HPP
