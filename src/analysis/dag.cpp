#include "analysis/dag.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qaoa::analysis {

CircuitDag::CircuitDag(const circuit::Circuit &circuit)
    : circuit_(&circuit)
{
    const auto &gates = circuit.gates();
    const std::size_t n_gates = gates.size();
    const std::size_t n_qubits =
        static_cast<std::size_t>(circuit.numQubits());

    preds_.assign(n_gates, {});
    succs_.assign(n_gates, {});
    qubit_gates_.assign(n_qubits, {});
    chain_pos_.assign(n_gates, {-1, -1});
    layer_.assign(n_gates, -1);

    // last_event[q]: most recent gate (BARRIERs included) touching q —
    // drives the dependency edges.  ready[q]: earliest free ASAP layer.
    std::vector<int> last_event(n_qubits, -1);
    std::vector<int> ready(n_qubits, 0);

    auto link = [&](int from, int to) {
        auto &s = succs_[static_cast<std::size_t>(from)];
        if (s.empty() || s.back() != to)
            s.push_back(to);
        auto &p = preds_[static_cast<std::size_t>(to)];
        if (p.empty() || p.back() != from)
            p.push_back(from);
    };

    for (std::size_t gi = 0; gi < n_gates; ++gi) {
        const circuit::Gate &g = gates[gi];
        const int i = static_cast<int>(gi);
        if (g.type == circuit::GateType::BARRIER) {
            int frontier = 0;
            for (std::size_t q = 0; q < n_qubits; ++q) {
                if (last_event[q] >= 0)
                    link(last_event[q], i);
                last_event[q] = i;
                frontier = std::max(frontier, ready[q]);
            }
            std::fill(ready.begin(), ready.end(), frontier);
            continue;
        }
        const int q0 = g.q0;
        const int q1 = g.arity() == 2 ? g.q1 : -1;
        for (int q : {q0, q1}) {
            if (q < 0)
                continue;
            auto qi = static_cast<std::size_t>(q);
            if (last_event[qi] >= 0 && last_event[qi] != i)
                link(last_event[qi], i);
            last_event[qi] = i;
            chain_pos_[gi][q == q0 ? 0 : 1] =
                static_cast<int>(qubit_gates_[qi].size());
            qubit_gates_[qi].push_back(i);
        }
        int slot = ready[static_cast<std::size_t>(q0)];
        if (q1 >= 0)
            slot = std::max(slot, ready[static_cast<std::size_t>(q1)]);
        layer_[gi] = slot;
        layer_count_ = std::max(layer_count_, slot + 1);
        ready[static_cast<std::size_t>(q0)] = slot + 1;
        if (q1 >= 0)
            ready[static_cast<std::size_t>(q1)] = slot + 1;
    }
}

int
CircuitDag::nextOnQubit(int gi, int q) const
{
    const circuit::Gate &g =
        circuit_->gates()[static_cast<std::size_t>(gi)];
    QAOA_ASSERT(g.actsOn(q), "gate does not act on the queried qubit");
    const int side = q == g.q0 ? 0 : 1;
    const int pos = chain_pos_[static_cast<std::size_t>(gi)]
                              [static_cast<std::size_t>(side)];
    const auto &chain = qubit_gates_[static_cast<std::size_t>(q)];
    const std::size_t next = static_cast<std::size_t>(pos) + 1;
    return next < chain.size() ? chain[next] : -1;
}

int
CircuitDag::prevOnQubit(int gi, int q) const
{
    const circuit::Gate &g =
        circuit_->gates()[static_cast<std::size_t>(gi)];
    QAOA_ASSERT(g.actsOn(q), "gate does not act on the queried qubit");
    const int side = q == g.q0 ? 0 : 1;
    const int pos = chain_pos_[static_cast<std::size_t>(gi)]
                              [static_cast<std::size_t>(side)];
    const auto &chain = qubit_gates_[static_cast<std::size_t>(q)];
    return pos > 0 ? chain[static_cast<std::size_t>(pos) - 1] : -1;
}

} // namespace qaoa::analysis
