#include "analysis/esp.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qaoa::analysis {

double
gateErrorRate(const circuit::Gate &g, const hw::CalibrationData &calib)
{
    using circuit::GateType;
    switch (g.type) {
      case GateType::U1:
      case GateType::BARRIER:
        return 0.0;
      case GateType::MEASURE:
        return calib.readoutError(g.q0);
      case GateType::CNOT:
        return calib.cnotError(g.q0, g.q1);
      case GateType::CPHASE:
      case GateType::CZ: {
        double s = 1.0 - calib.cnotError(g.q0, g.q1);
        return 1.0 - s * s;
      }
      case GateType::SWAP: {
        double s = 1.0 - calib.cnotError(g.q0, g.q1);
        return 1.0 - s * s * s;
      }
      default:
        return calib.oneQubitError(g.q0);
    }
}

EspBreakdown
estimateEsp(const circuit::Circuit &physical,
            const hw::CalibrationData &calib)
{
    EspBreakdown out;
    out.per_qubit.assign(static_cast<std::size_t>(physical.numQubits()),
                         1.0);
    for (const circuit::Gate &g : physical.gates()) {
        const double e = gateErrorRate(g, calib);
        const double s = 1.0 - e;
        out.total *= s;
        if (g.type == circuit::GateType::BARRIER)
            continue;
        if (g.arity() == 2) {
            out.two_qubit *= s;
            out.two_qubit_gates += 1;
            // Split evenly so the per-qubit factors multiply to total.
            const double half = std::sqrt(s);
            out.per_qubit[static_cast<std::size_t>(g.q0)] *= half;
            out.per_qubit[static_cast<std::size_t>(g.q1)] *= half;
        } else if (g.type == circuit::GateType::MEASURE) {
            out.readout *= s;
            out.measurements += 1;
            out.per_qubit[static_cast<std::size_t>(g.q0)] *= s;
        } else {
            out.one_qubit *= s;
            if (g.type != circuit::GateType::U1) // U1 is virtual, free
                out.one_qubit_gates += 1;
            out.per_qubit[static_cast<std::size_t>(g.q0)] *= s;
        }
    }
    QAOA_ASSERT(out.total > 0.0 && out.total <= 1.0 + 1e-12,
                "success probability outside (0, 1]");
    return out;
}

} // namespace qaoa::analysis
