/**
 * @file
 * Structured diagnostics for the static circuit-quality linter.
 *
 * Quality findings are reported as Finding records with a stable rule ID
 * (QL101...), a severity, and the gate/layer source location — the same
 * shape as the verifier's QV diagnostics (verify/diagnostics.hpp), so CLI
 * and CI output from both subsystems stay uniform.  The catalogues are
 * deliberately disjoint: QV rules certify *correctness* (the compiled
 * circuit computes the right thing), QL rules measure *quality* (the
 * compiled circuit wastes gates, time, or fidelity).  A circuit can be QV
 * clean and QL dirty, and vice versa.
 */

#ifndef QAOA_ANALYSIS_DIAGNOSTICS_HPP
#define QAOA_ANALYSIS_DIAGNOSTICS_HPP

#include <ostream>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace qaoa::analysis {

/**
 * Quality-rule catalogue (stable IDs; never renumber, only append).
 *
 * Errors are reserved for budget violations (an explicit bar was set and
 * missed); warnings flag structure a quality-preserving compiler should
 * never emit (removable gates); infos are advisory cost-model signals
 * that healthy circuits may legitimately carry.
 */
enum class Rule {
    MergeableRz,         ///< QL101: adjacent RZ/U1 rotations on one qubit
                         ///< with nothing between them (mergeable).
    MergeableCphase,     ///< QL102: adjacent CPHASE/CZ on the same pair
                         ///< with no interposed gate (angles add).
    CancellingCnot,      ///< QL103: adjacent identical CNOT pair (cancels
                         ///< to identity).
    CancellingSwap,      ///< QL104: adjacent SWAP-SWAP on the same pair
                         ///< (info: the stock layered router emits these;
                         ///< the peephole pass removes them).
    TrailingSwap,        ///< QL105: SWAP followed only by 1q gates and
                         ///< measurements on both wires (relabel instead).
    RedundantHadamard,   ///< QL106: adjacent H-H pair on one qubit.
    ZeroRotation,        ///< QL107: RZ/U1/CPHASE with angle = 0 (mod 2pi).
    UnreliableEdge,      ///< QL108: 2q gate on an edge when a strictly
                         ///< more reliable route existed under the
                         ///< current mapping.
    LongIdleWindow,      ///< QL109: idle gap on an active qubit exceeding
                         ///< the T2 budget fraction.
    DecoherenceExposure, ///< QL110: qubit active window exceeding the T2
                         ///< budget fraction.
    CrosstalkClash,      ///< QL111: known crosstalk pair co-scheduled in
                         ///< one layer.
    DepthHotspot,        ///< QL112: one qubit's gate chain dominates the
                         ///< circuit depth.
    LowParallelism,      ///< QL113: average layer occupancy far below the
                         ///< used-qubit count.
    SwapOverhead,        ///< QL114: routing SWAP overhead above threshold
                         ///< of the 2q gate count.
    BudgetViolation,     ///< QL115: an explicit --budget bar was missed.
};

/** Stable rule ID, e.g. "QL101". */
const char *ruleId(Rule r);

/** Short kebab-case rule name, e.g. "mergeable-rz". */
const char *ruleName(Rule r);

/** Finding severity. */
enum class Severity {
    Info,    ///< Advisory cost-model signal; never fails clean().
    Warning, ///< Wasteful structure; fails clean() at the default bar.
    Error,   ///< Explicit budget violation; always fails clean().
};

/** "info" / "warning" / "error". */
const char *severityName(Severity s);

/** The severity each rule carries by default. */
Severity ruleSeverity(Rule r);

/** One linter finding, anchored to a gate when one is implicated. */
struct Finding
{
    Rule rule = Rule::MergeableRz;
    Severity severity = Severity::Warning;
    int gate_index = -1; ///< Index into circuit.gates(); -1 = whole-circuit.
    int layer = -1;      ///< ASAP layer of the gate; -1 when not located.
    int q0 = -1;         ///< Implicated qubit (physical unless noted).
    int q1 = -1;         ///< Second implicated qubit; -1 when unused.
    std::string message; ///< Human-readable detail.
};

/**
 * Aggregated findings of one lint run.
 *
 * clean(min) is parameterized by the failure bar: the default bar
 * (Warning) tolerates infos, the strict bar (Info) tolerates nothing.
 */
class LintReport
{
  public:
    /** Appends a fully built finding. */
    void add(Finding f);

    /** Builds and appends a finding with the rule's default severity. */
    void add(Rule rule, int gate_index, int layer, int q0, int q1,
             std::string message);

    /** Appends a whole-circuit finding (no gate location). */
    void add(Rule rule, std::string message);

    /** Moves every finding of @p other into this report. */
    void merge(LintReport other);

    /** All findings in detection order. */
    const std::vector<Finding> &findings() const { return findings_; }

    /** Number of findings at exactly @p s. */
    int countSeverity(Severity s) const;

    /** Findings carrying @p rule. */
    int count(Rule rule) const;

    /** True when no finding reaches severity @p min. */
    bool clean(Severity min = Severity::Warning) const;

    /** True when nothing at all was found. */
    bool spotless() const { return findings_.empty(); }

    /** One-line digest, e.g. "1 error, 2 infos (QL109 x2, QL115)". */
    std::string summary() const;

    /** Findings as a common/table (rule, name, severity, gate, layer,
     *  qubits, detail) for text or CSV rendering. */
    Table toTable() const;

    /** Renders the findings table plus the summary line. */
    void print(std::ostream &os, bool csv = false) const;

  private:
    std::vector<Finding> findings_;
    int errors_ = 0;
    int warnings_ = 0;
};

} // namespace qaoa::analysis

#endif // QAOA_ANALYSIS_DIAGNOSTICS_HPP
