#include "analysis/diagnostics.hpp"

#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace qaoa::analysis {

const char *
ruleId(Rule r)
{
    switch (r) {
      case Rule::MergeableRz: return "QL101";
      case Rule::MergeableCphase: return "QL102";
      case Rule::CancellingCnot: return "QL103";
      case Rule::CancellingSwap: return "QL104";
      case Rule::TrailingSwap: return "QL105";
      case Rule::RedundantHadamard: return "QL106";
      case Rule::ZeroRotation: return "QL107";
      case Rule::UnreliableEdge: return "QL108";
      case Rule::LongIdleWindow: return "QL109";
      case Rule::DecoherenceExposure: return "QL110";
      case Rule::CrosstalkClash: return "QL111";
      case Rule::DepthHotspot: return "QL112";
      case Rule::LowParallelism: return "QL113";
      case Rule::SwapOverhead: return "QL114";
      case Rule::BudgetViolation: return "QL115";
    }
    QAOA_ASSERT(false, "unknown rule");
    return "";
}

const char *
ruleName(Rule r)
{
    switch (r) {
      case Rule::MergeableRz: return "mergeable-rz";
      case Rule::MergeableCphase: return "mergeable-cphase";
      case Rule::CancellingCnot: return "cancelling-cnot";
      case Rule::CancellingSwap: return "cancelling-swap";
      case Rule::TrailingSwap: return "trailing-swap";
      case Rule::RedundantHadamard: return "redundant-hadamard";
      case Rule::ZeroRotation: return "zero-rotation";
      case Rule::UnreliableEdge: return "unreliable-edge";
      case Rule::LongIdleWindow: return "long-idle-window";
      case Rule::DecoherenceExposure: return "decoherence-exposure";
      case Rule::CrosstalkClash: return "crosstalk-clash";
      case Rule::DepthHotspot: return "depth-hotspot";
      case Rule::LowParallelism: return "low-parallelism";
      case Rule::SwapOverhead: return "swap-overhead";
      case Rule::BudgetViolation: return "budget-violation";
    }
    QAOA_ASSERT(false, "unknown rule");
    return "";
}

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    QAOA_ASSERT(false, "unknown severity");
    return "";
}

Severity
ruleSeverity(Rule r)
{
    switch (r) {
      case Rule::MergeableRz:
      case Rule::MergeableCphase:
      case Rule::CancellingCnot:
      case Rule::TrailingSwap:
      case Rule::RedundantHadamard:
      case Rule::ZeroRotation:
      case Rule::CrosstalkClash:
        return Severity::Warning;
      case Rule::BudgetViolation:
        return Severity::Error;
      // CancellingSwap is advisory: the paper-faithful layered router
      // legitimately emits back-to-back SWAP pairs on sparse topologies
      // (the peephole pass removes them when enabled).
      case Rule::CancellingSwap:
      case Rule::UnreliableEdge:
      case Rule::LongIdleWindow:
      case Rule::DecoherenceExposure:
      case Rule::DepthHotspot:
      case Rule::LowParallelism:
      case Rule::SwapOverhead:
        return Severity::Info;
    }
    QAOA_ASSERT(false, "unknown rule");
    return Severity::Warning;
}

void
LintReport::add(Finding f)
{
    if (f.severity == Severity::Error)
        ++errors_;
    else if (f.severity == Severity::Warning)
        ++warnings_;
    findings_.push_back(std::move(f));
}

void
LintReport::add(Rule rule, int gate_index, int layer, int q0, int q1,
                std::string message)
{
    Finding f;
    f.rule = rule;
    f.severity = ruleSeverity(rule);
    f.gate_index = gate_index;
    f.layer = layer;
    f.q0 = q0;
    f.q1 = q1;
    f.message = std::move(message);
    add(std::move(f));
}

void
LintReport::add(Rule rule, std::string message)
{
    add(rule, -1, -1, -1, -1, std::move(message));
}

void
LintReport::merge(LintReport other)
{
    for (Finding &f : other.findings_)
        add(std::move(f));
}

int
LintReport::countSeverity(Severity s) const
{
    switch (s) {
      case Severity::Error:
        return errors_;
      case Severity::Warning:
        return warnings_;
      case Severity::Info:
        return static_cast<int>(findings_.size()) - errors_ - warnings_;
    }
    QAOA_ASSERT(false, "unknown severity");
    return 0;
}

int
LintReport::count(Rule rule) const
{
    int n = 0;
    for (const Finding &f : findings_)
        if (f.rule == rule)
            ++n;
    return n;
}

bool
LintReport::clean(Severity min) const
{
    switch (min) {
      case Severity::Error:
        return errors_ == 0;
      case Severity::Warning:
        return errors_ == 0 && warnings_ == 0;
      case Severity::Info:
        return findings_.empty();
    }
    QAOA_ASSERT(false, "unknown severity");
    return false;
}

std::string
LintReport::summary() const
{
    if (findings_.empty())
        return "clean";
    std::ostringstream os;
    bool lead = false;
    auto emit = [&](int n, const char *noun) {
        if (n == 0)
            return;
        if (lead)
            os << ", ";
        lead = true;
        os << n << " " << noun << (n == 1 ? "" : "s");
    };
    emit(errors_, "error");
    emit(warnings_, "warning");
    emit(countSeverity(Severity::Info), "info");
    // Stable per-rule counts, ordered by rule ID.
    std::map<std::string, int> by_rule;
    for (const Finding &f : findings_)
        ++by_rule[ruleId(f.rule)];
    os << " (";
    bool first = true;
    for (const auto &[id, n] : by_rule) {
        if (!first)
            os << ", ";
        first = false;
        os << id;
        if (n > 1)
            os << " x" << n;
    }
    os << ")";
    return os.str();
}

Table
LintReport::toTable() const
{
    Table t({"rule", "name", "severity", "gate", "layer", "qubits",
             "detail"});
    for (const Finding &f : findings_) {
        std::ostringstream qubits;
        if (f.q0 >= 0) {
            qubits << "q" << f.q0;
            if (f.q1 >= 0)
                qubits << ",q" << f.q1;
        } else {
            qubits << "-";
        }
        t.addRow({ruleId(f.rule), ruleName(f.rule),
                  severityName(f.severity),
                  f.gate_index >= 0 ? std::to_string(f.gate_index) : "-",
                  f.layer >= 0 ? std::to_string(f.layer) : "-",
                  qubits.str(), f.message});
    }
    return t;
}

void
LintReport::print(std::ostream &os, bool csv) const
{
    if (!findings_.empty()) {
        Table t = toTable();
        if (csv)
            t.printCsv(os);
        else
            t.print(os);
    }
    os << "lint: " << summary() << "\n";
}

} // namespace qaoa::analysis
