/**
 * @file
 * One-call circuit-quality analysis: metrics + lint + budget.
 *
 * analyzeCircuit() bundles the analysis passes into the report the
 * compile pipeline records in CompileResult and the qaoa_lint CLI
 * prints: the paper's scalar quality metrics (depth, gate counts, ESP —
 * Figs. 7-11), the timing sweep, and the QL findings, with optional
 * budget enforcement on top.
 */

#ifndef QAOA_ANALYSIS_QUALITY_HPP
#define QAOA_ANALYSIS_QUALITY_HPP

#include "analysis/budget.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/esp.hpp"
#include "analysis/lint.hpp"
#include "analysis/timing.hpp"
#include "circuit/circuit.hpp"

namespace qaoa::analysis {

/** Scalar quality metrics of one compiled circuit. */
struct QualitySummary
{
    int depth = 0;          ///< Critical-path depth (§V-A definition).
    int gate_count = 0;     ///< Gates, BARRIERs excluded.
    int two_qubit_gates = 0;
    int swap_count = 0;
    double execution_ns = 0.0;   ///< Timing-pass makespan.
    double coherence = 1.0;      ///< Decoherence-exposure factor.
    double esp = -1.0;           ///< Success probability; -1 = no
                                 ///< calibration supplied.
    double esp_one_qubit = -1.0; ///< ESP factor from 1q gates.
    double esp_two_qubit = -1.0; ///< ESP factor from 2q gates.
    double esp_readout = -1.0;   ///< ESP factor from measurements.
    double compile_ms = -1.0;    ///< Wall-clock compile time; -1 = not
                                 ///< recorded (analyzer-only runs).
};

/** Inputs of analyzeCircuit(). */
struct QualityOptions
{
    /** Rule-engine knobs; its map/calibration also feed the ESP and
     *  timing passes. */
    LintOptions lint{};

    /** Bars to enforce; violations append QL115 errors. */
    const QualityBudget *budget = nullptr;
};

/** Everything the analyzer knows about one circuit. */
struct QualityReport
{
    QualitySummary summary{};
    EspBreakdown esp{};      ///< Valid when summary.esp >= 0.
    TimingAnalysis timing{};
    LintReport lint;         ///< QL findings incl. budget violations.

    /** True when no finding reaches severity @p min. */
    bool clean(Severity min = Severity::Warning) const
    {
        return lint.clean(min);
    }
};

/** Runs metrics, timing, ESP (when calibrated), lint, and budget. */
QualityReport analyzeCircuit(const circuit::Circuit &physical,
                             const QualityOptions &options = {});

} // namespace qaoa::analysis

#endif // QAOA_ANALYSIS_QUALITY_HPP
