#include "analysis/budget.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "analysis/quality.hpp"
#include "common/error.hpp"

namespace qaoa::analysis {

namespace {

/** Minimal parser for one flat JSON object of string/number values. */
class FlatJsonParser
{
  public:
    explicit FlatJsonParser(const std::string &text) : text_(text) {}

    /** Invokes @p on_pair for every "key": value pair. */
    template <typename F>
    void parse(F &&on_pair)
    {
        skipSpace();
        expect('{');
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            expectEnd();
            return;
        }
        while (true) {
            const std::string key = parseString();
            skipSpace();
            expect(':');
            skipSpace();
            on_pair(key, parseValue());
            skipSpace();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                skipSpace();
                continue;
            }
            expect('}');
            expectEnd();
            return;
        }
    }

  private:
    char peek() const
    {
        QAOA_CHECK(pos_ < text_.size(),
                   "budget JSON: unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        QAOA_CHECK(peek() == c, "budget JSON: expected '"
                                    << c << "' at offset " << pos_
                                    << ", got '" << peek() << "'");
        ++pos_;
    }

    /** Requires nothing but whitespace after the closing brace. */
    void expectEnd()
    {
        skipSpace();
        QAOA_CHECK(pos_ == text_.size(),
                   "budget JSON: trailing content at offset " << pos_);
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (peek() != '"') {
            QAOA_CHECK(peek() != '\\',
                       "budget JSON: escapes are not supported");
            out.push_back(text_[pos_++]);
        }
        ++pos_; // closing quote
        return out;
    }

    /** Values are strings or numbers; numbers come back as their text. */
    std::string parseValue()
    {
        if (peek() == '"')
            return parseString();
        std::string out;
        while (pos_ < text_.size() && peek() != ',' && peek() != '}' &&
               !std::isspace(static_cast<unsigned char>(text_[pos_])))
            out.push_back(text_[pos_++]);
        QAOA_CHECK(!out.empty(), "budget JSON: empty value");
        return out;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

double
toNumber(const std::string &key, const std::string &value)
{
    std::size_t used = 0;
    double out = 0.0;
    try {
        out = std::stod(value, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    QAOA_CHECK(used == value.size(),
               "budget JSON: non-numeric value for \"" << key
                                                       << "\": " << value);
    return out;
}

std::string
fmt(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
}

} // namespace

QualityBudget
parseBudget(const std::string &json)
{
    QualityBudget budget;
    FlatJsonParser parser(json);
    parser.parse([&](const std::string &key, const std::string &value) {
        if (key == "name")
            budget.name = value;
        else if (key == "max_depth")
            budget.max_depth = toNumber(key, value);
        else if (key == "max_gate_count")
            budget.max_gate_count = toNumber(key, value);
        else if (key == "max_two_qubit_gates")
            budget.max_two_qubit_gates = toNumber(key, value);
        else if (key == "max_swap_count")
            budget.max_swap_count = toNumber(key, value);
        else if (key == "max_execution_ns")
            budget.max_execution_ns = toNumber(key, value);
        else if (key == "min_esp")
            budget.min_esp = toNumber(key, value);
        else if (key == "min_coherence")
            budget.min_coherence = toNumber(key, value);
        else if (key == "compile_ms")
            budget.max_compile_ms = toNumber(key, value);
        else
            QAOA_CHECK(false, "budget JSON: unknown key \"" << key
                                                            << "\"");
    });
    return budget;
}

QualityBudget
loadBudgetFile(const std::string &path)
{
    std::ifstream in(path);
    QAOA_CHECK(in.good(), "cannot open budget file: " << path);
    std::ostringstream buf;
    buf << in.rdbuf();
    QualityBudget budget = parseBudget(buf.str());
    if (budget.name.empty())
        budget.name = path;
    return budget;
}

LintReport
checkBudget(const QualitySummary &summary, const QualityBudget &budget)
{
    LintReport report;
    const std::string label =
        budget.name.empty() ? std::string("budget") : budget.name;
    auto bar = [&](double value, double limit, bool is_max,
                   const char *metric) {
        if (limit < 0.0)
            return;
        const bool violated = is_max ? value > limit : value < limit;
        if (violated)
            report.add(Rule::BudgetViolation,
                       label + ": " + metric + " " + fmt(value) + " " +
                           (is_max ? "exceeds" : "below") + " bar " +
                           fmt(limit));
    };
    bar(summary.depth, budget.max_depth, true, "depth");
    bar(summary.gate_count, budget.max_gate_count, true, "gate count");
    bar(summary.two_qubit_gates, budget.max_two_qubit_gates, true,
        "2q gate count");
    bar(summary.swap_count, budget.max_swap_count, true, "swap count");
    bar(summary.execution_ns, budget.max_execution_ns, true,
        "execution time (ns)");
    bar(summary.esp, budget.min_esp, false, "esp");
    bar(summary.coherence, budget.min_coherence, false, "coherence");
    if (summary.compile_ms >= 0.0)
        bar(summary.compile_ms, budget.max_compile_ms, true,
            "compile time (ms)");
    return report;
}

} // namespace qaoa::analysis
