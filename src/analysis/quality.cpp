#include "analysis/quality.hpp"

namespace qaoa::analysis {

QualityReport
analyzeCircuit(const circuit::Circuit &physical,
               const QualityOptions &options)
{
    QualityReport out;
    out.summary.depth = physical.depth();
    out.summary.gate_count = physical.gateCount();
    out.summary.two_qubit_gates = physical.twoQubitGateCount();
    out.summary.swap_count = physical.countType(circuit::GateType::SWAP);

    TimingOptions topts;
    topts.durations = options.lint.durations;
    topts.t2_ns = options.lint.t2_ns;
    topts.calibration = options.lint.calibration;
    out.timing = analyzeTiming(physical, topts);
    out.summary.execution_ns = out.timing.makespan_ns;
    out.summary.coherence = out.timing.coherence_factor;

    if (options.lint.calibration != nullptr) {
        out.esp = estimateEsp(physical, *options.lint.calibration);
        out.summary.esp = out.esp.total;
        out.summary.esp_one_qubit = out.esp.one_qubit;
        out.summary.esp_two_qubit = out.esp.two_qubit;
        out.summary.esp_readout = out.esp.readout;
    }

    out.lint = lintCircuit(physical, options.lint);
    if (options.budget != nullptr)
        out.lint.merge(checkBudget(out.summary, *options.budget));
    return out;
}

} // namespace qaoa::analysis
