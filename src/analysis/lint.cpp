#include "analysis/lint.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "analysis/dag.hpp"
#include "common/error.hpp"

namespace qaoa::analysis {

namespace {

using circuit::Gate;
using circuit::GateType;

Coupling
normalize(int a, int b)
{
    return {std::min(a, b), std::max(a, b)};
}

/** True when couplings @p x and @p y form a conflicting pair. */
bool
couplingsConflict(const std::vector<CrosstalkPair> &pairs,
                  const Coupling &x, const Coupling &y)
{
    for (const CrosstalkPair &p : pairs) {
        Coupling a = normalize(p.first.first, p.first.second);
        Coupling b = normalize(p.second.first, p.second.second);
        if ((x == a && y == b) || (x == b && y == a))
            return true;
    }
    return false;
}

/** Diagonal 1q rotations that merge into one U1 (QL101). */
bool
isZRotation(GateType t)
{
    return t == GateType::RZ || t == GateType::U1 || t == GateType::Z;
}

/** Diagonal 2q phases whose angles add (QL102). */
bool
isPhasePair(GateType t)
{
    return t == GateType::CPHASE || t == GateType::CZ;
}

/** Pure rotations that become identity (up to global phase) at angle
 *  0 mod 2pi (QL107). */
bool
isPlainRotation(GateType t)
{
    return t == GateType::RX || t == GateType::RY || t == GateType::RZ ||
           t == GateType::U1 || t == GateType::CPHASE;
}

std::string
fmt(double v)
{
    std::ostringstream os;
    os.precision(4);
    os << v;
    return os.str();
}

/** Success rate of the gate's CNOT chain on edge reliability @p r. */
double
chainSuccess(double r, int cnots)
{
    double s = 1.0;
    for (int i = 0; i < cnots; ++i)
        s *= r;
    return s;
}

/** Number of CNOTs the 2q gate decomposes into. */
int
cnotCount(GateType t)
{
    switch (t) {
      case GateType::CNOT: return 1;
      case GateType::CZ:
      case GateType::CPHASE: return 2;
      case GateType::SWAP: return 3;
      default: return 0;
    }
}

/** Peephole rules QL101-QL107: mergeable/cancelling/removable gates. */
void
lintPeepholes(const CircuitDag &dag, const LintOptions &options,
              LintReport &report)
{
    const auto &gates = dag.circuit().gates();
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const Gate &g = gates[gi];
        const int i = static_cast<int>(gi);
        const int layer = g.type == GateType::BARRIER ? -1 : dag.layerOf(i);

        if (isZRotation(g.type)) {
            const int n = dag.nextOnQubit(i, g.q0);
            if (n >= 0 && isZRotation(gates[static_cast<std::size_t>(n)]
                                          .type))
                report.add(Rule::MergeableRz, i, layer, g.q0, -1,
                           "adjacent z-rotations (gates " +
                               std::to_string(i) + ", " +
                               std::to_string(n) + ") merge into one");
        }

        if (g.arity() == 2) {
            const int na = dag.nextOnQubit(i, g.q0);
            const int nb = dag.nextOnQubit(i, g.q1);
            // Same successor on both wires = nothing interposed.
            if (na >= 0 && na == nb) {
                const Gate &h = gates[static_cast<std::size_t>(na)];
                if (isPhasePair(g.type) && isPhasePair(h.type))
                    report.add(Rule::MergeableCphase, i, layer, g.q0,
                               g.q1,
                               "adjacent diagonal phases (gates " +
                                   std::to_string(i) + ", " +
                                   std::to_string(na) + ") merge");
                if (g.type == GateType::CNOT &&
                    h.type == GateType::CNOT && h.q0 == g.q0 &&
                    h.q1 == g.q1)
                    report.add(Rule::CancellingCnot, i, layer, g.q0,
                               g.q1,
                               "cnot pair (gates " + std::to_string(i) +
                                   ", " + std::to_string(na) +
                                   ") cancels to identity");
                if (g.type == GateType::SWAP && h.type == GateType::SWAP)
                    report.add(Rule::CancellingSwap, i, layer, g.q0,
                               g.q1,
                               "swap pair (gates " + std::to_string(i) +
                                   ", " + std::to_string(na) +
                                   ") cancels to identity");
            }
        }

        if (g.type == GateType::SWAP) {
            // Trailing when neither wire sees another 2q gate: the swap
            // only permutes labels the final layout already tracks.
            bool trailing = true;
            for (int q : {g.q0, g.q1}) {
                for (int n = dag.nextOnQubit(i, q); n >= 0;
                     n = dag.nextOnQubit(n, q)) {
                    if (gates[static_cast<std::size_t>(n)].arity() == 2) {
                        trailing = false;
                        break;
                    }
                }
                if (!trailing)
                    break;
            }
            if (trailing)
                report.add(Rule::TrailingSwap, i, layer, g.q0, g.q1,
                           "swap followed only by 1q gates; relabel via "
                           "the final layout instead");
        }

        if (g.type == GateType::H) {
            const int n = dag.nextOnQubit(i, g.q0);
            if (n >= 0 &&
                gates[static_cast<std::size_t>(n)].type == GateType::H)
                report.add(Rule::RedundantHadamard, i, layer, g.q0, -1,
                           "h-h pair (gates " + std::to_string(i) + ", " +
                               std::to_string(n) + ") cancels");
        }

        if (isPlainRotation(g.type)) {
            const double wrapped =
                std::remainder(g.params[0], 2.0 * std::numbers::pi);
            if (std::fabs(wrapped) <= options.zero_angle_eps)
                report.add(Rule::ZeroRotation, i, layer, g.q0, g.q1,
                           gateName(g.type) + "(" + fmt(g.params[0]) +
                               ") is identity up to global phase");
        }
    }
}

/** QL108: 2q gate on an edge with a strictly more reliable detour. */
void
lintUnreliableEdges(const CircuitDag &dag, const LintOptions &options,
                    LintReport &report)
{
    if (options.map == nullptr || options.calibration == nullptr)
        return;
    const hw::CouplingMap &map = *options.map;
    const hw::CalibrationData &calib = *options.calibration;
    const auto &gates = dag.circuit().gates();
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const Gate &g = gates[gi];
        if (g.arity() != 2 || g.q0 >= map.numQubits() ||
            g.q1 >= map.numQubits() || !map.coupled(g.q0, g.q1))
            continue;
        const int cnots = cnotCount(g.type);
        const double direct =
            chainSuccess(1.0 - calib.cnotError(g.q0, g.q1), cnots);
        // Detour through a common neighbor c: one SWAP onto (q0, c)
        // followed by the gate on (c, q1).
        double best = direct;
        int best_via = -1;
        for (int c : map.neighbors(g.q0)) {
            if (c == g.q1 || !map.coupled(c, g.q1))
                continue;
            const double alt =
                chainSuccess(1.0 - calib.cnotError(g.q0, c), 3) *
                chainSuccess(1.0 - calib.cnotError(c, g.q1), cnots);
            if (alt > best) {
                best = alt;
                best_via = c;
            }
        }
        if (best_via >= 0)
            report.add(Rule::UnreliableEdge, static_cast<int>(gi),
                       dag.layerOf(static_cast<int>(gi)), g.q0, g.q1,
                       "edge success " + fmt(direct) + " but detour via q" +
                           std::to_string(best_via) + " reaches " +
                           fmt(best));
    }
}

/** QL109/QL110: idle windows and active windows against the T2 budget. */
void
lintTiming(const CircuitDag &dag, const LintOptions &options,
           LintReport &report)
{
    TimingOptions topts;
    topts.durations = options.durations;
    topts.t2_ns = options.t2_ns;
    topts.calibration = options.calibration;
    const TimingAnalysis timing = analyzeTiming(dag.circuit(), topts);

    auto t2_of = [&](int q) {
        return options.calibration != nullptr &&
                       q < options.calibration->numQubits()
                   ? options.calibration->t2Ns(q)
                   : options.t2_ns;
    };

    for (const IdleWindow &w : timing.idle_windows) {
        const double budget = options.idle_budget_fraction * t2_of(w.qubit);
        if (w.length_ns() > budget)
            report.add(Rule::LongIdleWindow, w.before_gate,
                       dag.layerOf(w.before_gate), w.qubit, -1,
                       "idle " + fmt(w.length_ns()) + " ns exceeds " +
                           fmt(budget) + " ns (" +
                           fmt(options.idle_budget_fraction) + " x T2)");
    }
    for (std::size_t q = 0; q < timing.qubits.size(); ++q) {
        const double window = timing.qubits[q].windowNs();
        const double budget =
            options.exposure_budget_fraction * t2_of(static_cast<int>(q));
        if (window > budget)
            report.add(Rule::DecoherenceExposure, -1, -1,
                       static_cast<int>(q), -1,
                       "active window " + fmt(window) + " ns exceeds " +
                           fmt(budget) + " ns (" +
                           fmt(options.exposure_budget_fraction) +
                           " x T2)");
    }
}

/** QL112/QL113/QL114: shape metrics (hotspots, occupancy, swaps). */
void
lintShape(const CircuitDag &dag, const LintOptions &options,
          LintReport &report)
{
    const circuit::Circuit &c = dag.circuit();
    const int depth = dag.layerCount();
    if (depth >= options.min_depth) {
        int used = 0;
        double total_len = 0.0;
        for (int q = 0; q < c.numQubits(); ++q) {
            if (dag.gatesOn(q).empty())
                continue;
            ++used;
            total_len += static_cast<double>(dag.gatesOn(q).size());
        }
        const double mean_len = used > 0 ? total_len / used : 0.0;
        for (int q = 0; q < c.numQubits(); ++q) {
            const double len =
                static_cast<double>(dag.gatesOn(q).size());
            if (len >= options.hotspot_fraction * depth &&
                len >= 2.0 * mean_len)
                report.add(Rule::DepthHotspot, -1, -1, q, -1,
                           "qubit chain of " + fmt(len) +
                               " gates dominates depth " +
                               std::to_string(depth) + " (mean chain " +
                               fmt(mean_len) + ")");
        }
        if (used >= 4) {
            const double occupancy =
                static_cast<double>(c.gateCount()) / depth;
            if (occupancy < options.parallelism_floor)
                report.add(Rule::LowParallelism,
                           "mean layer occupancy " + fmt(occupancy) +
                               " below " +
                               fmt(options.parallelism_floor) + " across " +
                               std::to_string(used) + " used qubits");
        }
    }
    const int swaps = c.countType(GateType::SWAP);
    const int other_2q = c.twoQubitGateCount() - swaps;
    if (other_2q > 0 &&
        swaps > options.swap_overhead_ratio * other_2q)
        report.add(Rule::SwapOverhead,
                   std::to_string(swaps) + " swaps for " +
                       std::to_string(other_2q) +
                       " interaction gates (ratio above " +
                       fmt(options.swap_overhead_ratio) + ")");
}

} // namespace

std::vector<Finding>
findCrosstalkClashes(const circuit::Circuit &physical,
                     const std::vector<CrosstalkPair> &pairs)
{
    std::vector<Finding> clashes;
    if (pairs.empty())
        return clashes;
    const CircuitDag dag(physical);
    // Gather 2q gates per ASAP layer, then test every unordered pair.
    std::vector<std::vector<int>> by_layer(
        static_cast<std::size_t>(dag.layerCount()));
    const auto &gates = physical.gates();
    for (std::size_t gi = 0; gi < gates.size(); ++gi)
        if (circuit::isTwoQubit(gates[gi].type))
            by_layer[static_cast<std::size_t>(
                         dag.layerOf(static_cast<int>(gi)))]
                .push_back(static_cast<int>(gi));
    for (std::size_t li = 0; li < by_layer.size(); ++li) {
        const auto &layer = by_layer[li];
        for (std::size_t i = 0; i < layer.size(); ++i) {
            const Gate &a = gates[static_cast<std::size_t>(layer[i])];
            for (std::size_t j = i + 1; j < layer.size(); ++j) {
                const Gate &b = gates[static_cast<std::size_t>(layer[j])];
                if (!couplingsConflict(pairs, normalize(a.q0, a.q1),
                                       normalize(b.q0, b.q1)))
                    continue;
                Finding f;
                f.rule = Rule::CrosstalkClash;
                f.severity = ruleSeverity(f.rule);
                f.gate_index = layer[j];
                f.layer = static_cast<int>(li);
                f.q0 = b.q0;
                f.q1 = b.q1;
                f.message = "co-scheduled with " +
                            gates[static_cast<std::size_t>(layer[i])]
                                .toString() +
                            " (gate " + std::to_string(layer[i]) +
                            ") on a crosstalk-prone coupling pair";
                clashes.push_back(std::move(f));
            }
        }
    }
    return clashes;
}

LintReport
lintCircuit(const circuit::Circuit &physical, const LintOptions &options)
{
    LintReport report;
    const CircuitDag dag(physical);
    lintPeepholes(dag, options, report);
    lintUnreliableEdges(dag, options, report);
    lintTiming(dag, options, report);
    lintShape(dag, options, report);
    for (Finding &f : findCrosstalkClashes(physical,
                                           options.crosstalk_pairs))
        report.add(std::move(f));
    return report;
}

} // namespace qaoa::analysis
