#include "analysis/timing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace qaoa::analysis {

double
GateDurations::of(const circuit::Gate &g) const
{
    using circuit::GateType;
    switch (g.type) {
      case GateType::BARRIER:
        return 0.0;
      case GateType::U1:
      case GateType::RZ:
      case GateType::Z:
        return virtual_ns;
      case GateType::MEASURE:
        return measure_ns;
      case GateType::CNOT:
        return two_qubit_ns;
      case GateType::CZ:
      case GateType::CPHASE:
        return 2.0 * two_qubit_ns; // two CNOTs (RZ is virtual)
      case GateType::SWAP:
        return 3.0 * two_qubit_ns;
      default:
        return one_qubit_ns;
    }
}

TimingAnalysis
analyzeTiming(const circuit::Circuit &circuit, const TimingOptions &options)
{
    QAOA_CHECK(options.t1_ns > 0.0 && options.t2_ns > 0.0,
               "non-positive T1/T2");
    const auto &gates = circuit.gates();
    const std::size_t n_gates = gates.size();
    const std::size_t n_qubits =
        static_cast<std::size_t>(circuit.numQubits());

    TimingAnalysis out;
    out.start_ns.assign(n_gates, 0.0);
    out.finish_ns.assign(n_gates, 0.0);
    out.qubits.assign(n_qubits, {});
    out.coherence.assign(n_qubits, 1.0);

    // ready[q]: when qubit q is next free; writer[q]: gate that set it.
    std::vector<double> ready(n_qubits, 0.0);
    std::vector<int> writer(n_qubits, -1);
    // crit_pred[g]: the gate whose finish dictated g's start (-1 = t=0).
    std::vector<int> crit_pred(n_gates, -1);
    // last_finish[q]: finish of the previous gate on q (idle tracking).
    std::vector<double> last_finish(n_qubits, -1.0);

    int last_gate = -1; // gate achieving the makespan
    for (std::size_t gi = 0; gi < n_gates; ++gi) {
        const circuit::Gate &g = gates[gi];
        if (g.type == circuit::GateType::BARRIER) {
            double frontier = 0.0;
            int frontier_writer = -1;
            for (std::size_t q = 0; q < n_qubits; ++q) {
                if (ready[q] > frontier) {
                    frontier = ready[q];
                    frontier_writer = writer[q];
                }
            }
            std::fill(ready.begin(), ready.end(), frontier);
            std::fill(writer.begin(), writer.end(), frontier_writer);
            out.start_ns[gi] = out.finish_ns[gi] = frontier;
            crit_pred[gi] = frontier_writer;
            continue;
        }

        const int q0 = g.q0;
        const int q1 = g.arity() == 2 ? g.q1 : -1;
        double start = ready[static_cast<std::size_t>(q0)];
        int pred = writer[static_cast<std::size_t>(q0)];
        if (q1 >= 0 && ready[static_cast<std::size_t>(q1)] > start) {
            start = ready[static_cast<std::size_t>(q1)];
            pred = writer[static_cast<std::size_t>(q1)];
        }
        const double dt = options.durations.of(g);
        const double finish = start + dt;
        out.start_ns[gi] = start;
        out.finish_ns[gi] = finish;
        crit_pred[gi] = pred;

        for (int q : {q0, q1}) {
            if (q < 0)
                continue;
            auto qi = static_cast<std::size_t>(q);
            QubitActivity &act = out.qubits[qi];
            if (act.first_busy_ns < 0.0)
                act.first_busy_ns = start;
            else if (start > last_finish[qi])
                out.idle_windows.push_back({q, last_finish[qi], start,
                                            static_cast<int>(gi)});
            act.last_busy_ns = finish;
            act.busy_ns += dt;
            act.gate_count += 1;
            last_finish[qi] = finish;
            ready[qi] = finish;
            writer[qi] = static_cast<int>(gi);
        }
        if (finish > out.makespan_ns ||
            (last_gate < 0 && finish >= out.makespan_ns)) {
            out.makespan_ns = finish;
            last_gate = static_cast<int>(gi);
        }
    }

    // Idle totals (windows are recorded per closing gate, so sum here).
    for (const IdleWindow &w : out.idle_windows)
        out.qubits[static_cast<std::size_t>(w.qubit)].idle_ns +=
            w.length_ns();

    // Critical path: walk the dictating-predecessor chain backwards.
    for (int gi = last_gate; gi >= 0;
         gi = crit_pred[static_cast<std::size_t>(gi)]) {
        if (gates[static_cast<std::size_t>(gi)].type !=
            circuit::GateType::BARRIER)
            out.critical_path.push_back(gi);
    }
    std::reverse(out.critical_path.begin(), out.critical_path.end());

    // Decoherence exposure: per-qubit T1/T2 from calibration when given.
    for (std::size_t q = 0; q < n_qubits; ++q) {
        const QubitActivity &act = out.qubits[q];
        if (act.first_busy_ns < 0.0)
            continue; // never touched, never entangled
        double t1 = options.t1_ns;
        double t2 = options.t2_ns;
        if (options.calibration &&
            static_cast<int>(q) < options.calibration->numQubits()) {
            t1 = options.calibration->t1Ns(static_cast<int>(q));
            t2 = options.calibration->t2Ns(static_cast<int>(q));
        }
        out.coherence[q] =
            std::exp(-act.windowNs() / t2 - act.idle_ns / t1);
        out.coherence_factor *= out.coherence[q];
    }
    return out;
}

double
executionTimeNs(const circuit::Circuit &circuit,
                const GateDurations &durations)
{
    TimingOptions options;
    options.durations = durations;
    return analyzeTiming(circuit, options).makespan_ns;
}

double
decoherenceFactor(const circuit::Circuit &circuit, double t2_ns,
                  const GateDurations &durations)
{
    QAOA_CHECK(t2_ns > 0.0, "non-positive T2");
    TimingOptions options;
    options.durations = durations;
    options.t2_ns = t2_ns;
    options.t1_ns = std::numeric_limits<double>::infinity();
    return analyzeTiming(circuit, options).coherence_factor;
}

} // namespace qaoa::analysis
