/**
 * @file
 * Dependency DAG over a Circuit.
 *
 * Every static pass in analysis/ asks the same structural questions:
 * which gate precedes/follows gate g on qubit q (adjacency chains), what
 * does g depend on (dependency edges, BARRIERs included as
 * synchronization nodes), and which ASAP layer does g occupy.  Building
 * the DAG once per analyzed circuit answers all of them in O(1) per
 * query, so the timing pass, the ESP attribution and the QL lint rules
 * share one traversal instead of re-walking the gate list each.
 */

#ifndef QAOA_ANALYSIS_DAG_HPP
#define QAOA_ANALYSIS_DAG_HPP

#include <array>
#include <vector>

#include "circuit/circuit.hpp"

namespace qaoa::analysis {

/**
 * Per-gate dependency structure of one circuit.
 *
 * Gate indices refer to circuit.gates().  Dependency edges (preds/succs)
 * include BARRIER nodes — a barrier depends on the last event of every
 * qubit and everything after it depends on the barrier — so a
 * topological walk reproduces the scheduling semantics.  The
 * adjacency-chain accessors (nextOnQubit/prevOnQubit) skip barriers:
 * they answer the peephole question "is there really no operation
 * between these two gates on this wire".
 */
class CircuitDag
{
  public:
    /** Builds the DAG for @p circuit (kept by pointer; must outlive). */
    explicit CircuitDag(const circuit::Circuit &circuit);

    /** The analyzed circuit. */
    const circuit::Circuit &circuit() const { return *circuit_; }

    /** Dependency predecessors of gate @p gi (deduplicated). */
    const std::vector<int> &preds(int gi) const
    {
        return preds_[static_cast<std::size_t>(gi)];
    }

    /** Dependency successors of gate @p gi (deduplicated). */
    const std::vector<int> &succs(int gi) const
    {
        return succs_[static_cast<std::size_t>(gi)];
    }

    /**
     * Index of the next non-BARRIER gate acting on @p q after gate
     * @p gi, or -1 when none; @p gi must act on @p q.
     */
    int nextOnQubit(int gi, int q) const;

    /** Index of the previous non-BARRIER gate on @p q, or -1. */
    int prevOnQubit(int gi, int q) const;

    /** ASAP layer of every gate; BARRIERs get -1 (they occupy none). */
    const std::vector<int> &layers() const { return layer_; }

    /** ASAP layer of gate @p gi (-1 for BARRIER). */
    int layerOf(int gi) const
    {
        return layer_[static_cast<std::size_t>(gi)];
    }

    /** Number of ASAP layers. */
    int layerCount() const { return layer_count_; }

    /** Non-BARRIER gate indices acting on qubit @p q, in program order. */
    const std::vector<int> &gatesOn(int q) const
    {
        return qubit_gates_[static_cast<std::size_t>(q)];
    }

  private:
    const circuit::Circuit *circuit_;
    std::vector<std::vector<int>> preds_;
    std::vector<std::vector<int>> succs_;
    std::vector<std::vector<int>> qubit_gates_;
    /** Position of gate gi inside gatesOn(q) chains: chain_pos_[gi] holds
     *  {pos on q0, pos on q1}. */
    std::vector<std::array<int, 2>> chain_pos_;
    std::vector<int> layer_;
    int layer_count_ = 0;
};

} // namespace qaoa::analysis

#endif // QAOA_ANALYSIS_DAG_HPP
