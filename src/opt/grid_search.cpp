#include "opt/grid_search.hpp"

#include <limits>

#include "common/error.hpp"

namespace qaoa::opt {

OptResult
gridSearch(const Objective &f, const std::vector<GridAxis> &axes)
{
    GridSearchState state;
    return gridSearchResume(f, axes, state);
}

OptResult
gridSearchResume(const Objective &f, const std::vector<GridAxis> &axes,
                 GridSearchState &state, const OptHooks &hooks)
{
    QAOA_CHECK(!axes.empty(), "grid search needs at least one axis");
    for (const GridAxis &a : axes)
        QAOA_CHECK(a.points >= 2 && a.hi >= a.lo,
                   "invalid grid axis [" << a.lo << ", " << a.hi << "] x "
                                         << a.points);

    const std::size_t dims = axes.size();
    if (state.cursor.empty() && state.evaluations == 0) {
        state.cursor.assign(dims, 0);
        state.best_value = std::numeric_limits<double>::infinity();
    }
    QAOA_CHECK(state.cursor.size() == dims,
               "resumed grid state has " << state.cursor.size()
                                         << " dims, expected " << dims);

    std::vector<double> x(dims);
    while (!state.done) {
        if (hooks.guard)
            hooks.guard->poll("grid-search point");
        for (std::size_t d = 0; d < dims; ++d) {
            const GridAxis &a = axes[d];
            x[d] = a.lo + (a.hi - a.lo) *
                              static_cast<double>(state.cursor[d]) /
                              static_cast<double>(a.points - 1);
        }
        double v = f(x);
        ++state.evaluations;
        if (v < state.best_value) {
            state.best_value = v;
            state.best_x = x;
        }
        // Odometer increment.
        std::size_t d = 0;
        while (d < dims) {
            if (++state.cursor[d] < axes[d].points)
                break;
            state.cursor[d] = 0;
            ++d;
        }
        state.done = (d == dims);
        if (hooks.on_progress)
            hooks.on_progress();
    }

    OptResult best;
    best.x = state.best_x;
    best.value = state.best_value;
    best.evaluations = state.evaluations;
    best.converged = true;
    return best;
}

OptResult
gridThenNelderMead(const Objective &f, const std::vector<GridAxis> &axes,
                   const NelderMeadOptions &nm)
{
    OptResult seed = gridSearch(f, axes);
    OptResult refined = nelderMead(f, seed.x, nm);
    refined.evaluations += seed.evaluations;
    if (seed.value < refined.value) {
        // Guard against a pathological refinement step.
        refined.x = seed.x;
        refined.value = seed.value;
    }
    return refined;
}

} // namespace qaoa::opt
