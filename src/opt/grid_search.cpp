#include "opt/grid_search.hpp"

#include <limits>

#include "common/error.hpp"

namespace qaoa::opt {

OptResult
gridSearch(const Objective &f, const std::vector<GridAxis> &axes)
{
    QAOA_CHECK(!axes.empty(), "grid search needs at least one axis");
    for (const GridAxis &a : axes)
        QAOA_CHECK(a.points >= 2 && a.hi >= a.lo,
                   "invalid grid axis [" << a.lo << ", " << a.hi << "] x "
                                         << a.points);

    const std::size_t dims = axes.size();
    std::vector<int> idx(dims, 0);
    std::vector<double> x(dims);

    OptResult best;
    best.value = std::numeric_limits<double>::infinity();
    int evals = 0;

    bool done = false;
    while (!done) {
        for (std::size_t d = 0; d < dims; ++d) {
            const GridAxis &a = axes[d];
            x[d] = a.lo + (a.hi - a.lo) * static_cast<double>(idx[d]) /
                              static_cast<double>(a.points - 1);
        }
        double v = f(x);
        ++evals;
        if (v < best.value) {
            best.value = v;
            best.x = x;
        }
        // Odometer increment.
        std::size_t d = 0;
        while (d < dims) {
            if (++idx[d] < axes[d].points)
                break;
            idx[d] = 0;
            ++d;
        }
        done = (d == dims);
    }
    best.evaluations = evals;
    best.converged = true;
    return best;
}

OptResult
gridThenNelderMead(const Objective &f, const std::vector<GridAxis> &axes,
                   const NelderMeadOptions &nm)
{
    OptResult seed = gridSearch(f, axes);
    OptResult refined = nelderMead(f, seed.x, nm);
    refined.evaluations += seed.evaluations;
    if (seed.value < refined.value) {
        // Guard against a pathological refinement step.
        refined.x = seed.x;
        refined.value = seed.value;
    }
    return refined;
}

} // namespace qaoa::opt
