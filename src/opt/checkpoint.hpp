/**
 * @file
 * Optimizer checkpoints: crash-safe save/resume of a grid + Nelder–Mead
 * parameter search.
 *
 * A checkpoint captures everything optimizeP1Checkpointed() needs to
 * continue a killed run bit-identically: which phase it was in (grid
 * sweep, simplex refinement, or done), the phase's committed state, and
 * a problem hash so a checkpoint is never resumed against a different
 * instance.  Doubles are serialized as C99 hexfloats ("%a"), so every
 * bit of the mantissa round-trips and a resumed run's arithmetic is
 * exactly the uninterrupted run's.
 *
 * On-disk format is one flat JSON object with only string values —
 * the same dependency-free grammar as tests/budgets (see
 * analysis/budget.hpp) with vectors flattened to comma-joined fields.
 * Writes go through a temp file + atomic rename, so a kill mid-write
 * leaves the previous checkpoint intact.
 */

#ifndef QAOA_OPT_CHECKPOINT_HPP
#define QAOA_OPT_CHECKPOINT_HPP

#include <string>
#include <vector>

#include "opt/grid_search.hpp"
#include "opt/nelder_mead.hpp"

namespace qaoa::opt {

/** Search phase recorded in a checkpoint. */
enum class OptPhase {
    Grid, ///< Coarse grid sweep in progress.
    Nm,   ///< Nelder–Mead refinement in progress.
    Done, ///< Search finished; final_* fields hold the answer.
};

/** Phase name as stored in the JSON ("grid" / "nm" / "done"). */
[[nodiscard]] std::string optPhaseName(OptPhase phase);

/** Serializable snapshot of a grid + Nelder–Mead search. */
struct OptCheckpoint
{
    /**
     * Caller-supplied identity of the problem being optimized (e.g.
     * a hash of graph + device + seed).  loadCheckpointFile() callers
     * must reject a checkpoint whose hash differs from the problem at
     * hand; resuming someone else's state would silently corrupt the
     * search.
     */
    std::string problem_hash;

    OptPhase phase = OptPhase::Grid;
    GridSearchState grid;
    NelderMeadState nm;

    /** Serialized common/rng.hpp engine state ("" = none). */
    std::string rng_state;

    /** Final answer; valid when phase == OptPhase::Done. */
    std::vector<double> final_x;
    double final_value = 0.0;
    int final_evaluations = 0;
};

/** Formats @p v as a C99 hexfloat that round-trips bit-exactly. */
[[nodiscard]] std::string formatHexDouble(double v);

/** Parses a formatHexDouble() string (plain decimal also accepted). */
[[nodiscard]] double parseHexDouble(const std::string &text);

/** Serializes to the flat-JSON checkpoint format. */
[[nodiscard]] std::string serializeCheckpoint(const OptCheckpoint &checkpoint);

/**
 * Parses a serializeCheckpoint() document.
 *
 * @throws std::runtime_error on malformed input, unknown keys, or a
 *         format-version mismatch.
 */
[[nodiscard]] OptCheckpoint parseCheckpoint(const std::string &json);

/**
 * Atomically writes the checkpoint to @p path (temp file + rename,
 * with a short retry ladder around the filesystem calls).
 *
 * @throws std::runtime_error when the write keeps failing.
 */
void saveCheckpointFile(const std::string &path,
                        const OptCheckpoint &checkpoint);

/**
 * Loads a checkpoint if @p path exists.
 *
 * @return true and fills @p out on success; false when the file does
 *         not exist.  A file that exists but does not parse throws —
 *         silently restarting a corrupt resume is worse than failing.
 */
[[nodiscard]] bool loadCheckpointFile(const std::string &path,
                                      OptCheckpoint &out);

/**
 * @name Circuit artifact sidecars
 *
 * A checkpoint records the *search* state; the circuit compiled from
 * its parameters is saved next to it as a qbin artifact document
 * (circuit/qbin.hpp) — binary and bit-exact, like the checkpoint's
 * hexfloat doubles.  These helpers only move opaque bytes, so opt/
 * stays independent of circuit/; producers encode with
 * circuit::qbin::encodeArtifact and consumers validate on decode.
 * @{
 */

/** Conventional sidecar path for @p checkpoint_path (appends ".qbin"). */
[[nodiscard]] std::string artifactPathFor(const std::string &checkpoint_path);

/** Atomically writes @p bytes to @p path (same temp-file + rename
 *  ladder as saveCheckpointFile); throws when the write keeps failing. */
void saveArtifactFile(const std::string &path, const std::string &bytes);

/** Loads @p path if it exists.
 *  @return true and fills @p out on success; false when missing. */
[[nodiscard]] bool loadArtifactFile(const std::string &path, std::string &out);

/** @} */

} // namespace qaoa::opt

#endif // QAOA_OPT_CHECKPOINT_HPP
