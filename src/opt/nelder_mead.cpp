#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qaoa::opt {

OptResult
nelderMead(const Objective &f, const std::vector<double> &x0,
           const NelderMeadOptions &options)
{
    NelderMeadState state;
    return nelderMeadResume(f, x0, options, state);
}

OptResult
nelderMeadResume(const Objective &f, const std::vector<double> &x0,
                 const NelderMeadOptions &options, NelderMeadState &state,
                 const OptHooks &hooks)
{
    QAOA_CHECK(!x0.empty(), "empty starting point");
    const std::size_t n = x0.size();

    auto eval = [&](const std::vector<double> &x) {
        ++state.evaluations;
        return f(x);
    };
    auto progress = [&]() {
        if (hooks.on_progress)
            hooks.on_progress();
    };

    if (!state.initialized) {
        // Initial simplex: x0 plus one vertex stepped along each axis.
        state.simplex.assign(n + 1, x0);
        for (std::size_t i = 0; i < n; ++i)
            state.simplex[i + 1][i] += options.initial_step;
        state.values.assign(n + 1, 0.0);
        for (std::size_t i = 0; i <= n; ++i)
            state.values[i] = eval(state.simplex[i]);
        state.initialized = true;
        progress();
    } else {
        QAOA_CHECK(state.simplex.size() == n + 1 &&
                       state.values.size() == n + 1,
                   "resumed Nelder-Mead state has "
                       << state.simplex.size() << " vertices, expected "
                       << n + 1);
    }

    std::vector<std::vector<double>> &simplex = state.simplex;
    std::vector<double> &values = state.values;

    auto order = [&]() {
        std::vector<std::size_t> idx(n + 1);
        for (std::size_t i = 0; i <= n; ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
            return values[a] < values[b];
        });
        std::vector<std::vector<double>> s2(n + 1);
        std::vector<double> v2(n + 1);
        for (std::size_t i = 0; i <= n; ++i) {
            s2[i] = simplex[idx[i]];
            v2[i] = values[idx[i]];
        }
        simplex = std::move(s2);
        values = std::move(v2);
    };

    while (!state.converged &&
           state.iterations < options.max_iterations) {
        if (hooks.guard)
            hooks.guard->poll("Nelder-Mead iteration");
        order();
        if (std::abs(values[n] - values[0]) < options.tolerance) {
            state.converged = true;
            progress();
            break;
        }

        // Centroid of all but the worst vertex.
        std::vector<double> centroid(n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t d = 0; d < n; ++d)
                centroid[d] += simplex[i][d] / static_cast<double>(n);

        auto blend = [&](double coeff) {
            std::vector<double> x(n);
            for (std::size_t d = 0; d < n; ++d)
                x[d] = centroid[d] + coeff * (simplex[n][d] - centroid[d]);
            return x;
        };

        auto commit = [&]() {
            ++state.iterations;
            progress();
        };

        std::vector<double> reflected = blend(-options.reflection);
        double fr = eval(reflected);
        if (fr < values[0]) {
            std::vector<double> expanded =
                blend(-options.reflection * options.expansion);
            double fe = eval(expanded);
            if (fe < fr) {
                simplex[n] = std::move(expanded);
                values[n] = fe;
            } else {
                simplex[n] = std::move(reflected);
                values[n] = fr;
            }
            commit();
            continue;
        }
        if (fr < values[n - 1]) {
            simplex[n] = std::move(reflected);
            values[n] = fr;
            commit();
            continue;
        }
        std::vector<double> contracted = blend(options.contraction);
        double fc = eval(contracted);
        if (fc < values[n]) {
            simplex[n] = std::move(contracted);
            values[n] = fc;
            commit();
            continue;
        }
        // Shrink towards the best vertex.  In-place mutation is fine
        // for resumability: steps only commit at iteration boundaries,
        // so a kill mid-shrink replays the whole iteration.
        for (std::size_t i = 1; i <= n; ++i) {
            for (std::size_t d = 0; d < n; ++d)
                simplex[i][d] = simplex[0][d] +
                                options.shrink *
                                    (simplex[i][d] - simplex[0][d]);
            values[i] = eval(simplex[i]);
        }
        commit();
    }

    order();
    OptResult result;
    result.x = simplex[0];
    result.value = values[0];
    result.iterations = state.iterations;
    result.evaluations = state.evaluations;
    result.converged = state.converged;
    return result;
}

} // namespace qaoa::opt
