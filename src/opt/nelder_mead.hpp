/**
 * @file
 * Nelder–Mead simplex minimizer.
 *
 * Stand-in for the SciPy L-BFGS-B optimizer the paper uses in the
 * quantum-classical loop (§V-G); the p=1 QAOA (γ, β) landscape is smooth
 * and two-dimensional, where the simplex method is robust without
 * gradients (see DESIGN.md substitution table).
 */

#ifndef QAOA_OPT_NELDER_MEAD_HPP
#define QAOA_OPT_NELDER_MEAD_HPP

#include <functional>
#include <vector>

namespace qaoa::opt {

/** Objective: R^n -> R. */
using Objective = std::function<double(const std::vector<double> &)>;

/** Termination and shape parameters for Nelder–Mead. */
struct NelderMeadOptions
{
    int max_iterations = 400;   ///< Simplex iterations.
    double tolerance = 1e-6;    ///< Convergence on simplex value spread
                                ///< (matches the paper's e-6 limit).
    double initial_step = 0.25; ///< Edge length of the initial simplex.

    double reflection = 1.0;    ///< alpha.
    double expansion = 2.0;     ///< gamma.
    double contraction = 0.5;   ///< rho.
    double shrink = 0.5;        ///< sigma.
};

/** Result of a minimization run. */
struct OptResult
{
    std::vector<double> x;   ///< Best point found.
    double value = 0.0;      ///< Objective at x.
    int iterations = 0;      ///< Iterations consumed.
    int evaluations = 0;     ///< Objective evaluations.
    bool converged = false;  ///< Tolerance reached before max_iterations.
};

/**
 * Minimizes @p f starting from @p x0.
 *
 * @throws std::runtime_error for an empty starting point.
 */
OptResult nelderMead(const Objective &f, const std::vector<double> &x0,
                     const NelderMeadOptions &options = {});

} // namespace qaoa::opt

#endif // QAOA_OPT_NELDER_MEAD_HPP
