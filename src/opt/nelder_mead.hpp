/**
 * @file
 * Nelder–Mead simplex minimizer.
 *
 * Stand-in for the SciPy L-BFGS-B optimizer the paper uses in the
 * quantum-classical loop (§V-G); the p=1 QAOA (γ, β) landscape is smooth
 * and two-dimensional, where the simplex method is robust without
 * gradients (see DESIGN.md substitution table).
 */

#ifndef QAOA_OPT_NELDER_MEAD_HPP
#define QAOA_OPT_NELDER_MEAD_HPP

#include <functional>
#include <vector>

#include "common/guard.hpp"

namespace qaoa::opt {

/** Objective: R^n -> R. */
using Objective = std::function<double(const std::vector<double> &)>;

/**
 * Cooperative hooks shared by the resumable optimizer cores.
 *
 * The guard (when set) is polled once per committed step — one grid
 * point or one simplex iteration — so cancellation latency is bounded
 * by a single objective evaluation batch.  on_progress fires after
 * each committed step, when the optimizer state is self-consistent;
 * checkpointing callers serialize there, which makes saved state
 * SIGKILL-safe (a kill mid-step merely redoes that step on resume).
 */
struct OptHooks
{
    const run::RunGuard *guard = nullptr;
    std::function<void()> on_progress;
};

/** Termination and shape parameters for Nelder–Mead. */
struct NelderMeadOptions
{
    int max_iterations = 400;   ///< Simplex iterations.
    double tolerance = 1e-6;    ///< Convergence on simplex value spread
                                ///< (matches the paper's e-6 limit).
    double initial_step = 0.25; ///< Edge length of the initial simplex.

    double reflection = 1.0;    ///< alpha.
    double expansion = 2.0;     ///< gamma.
    double contraction = 0.5;   ///< rho.
    double shrink = 0.5;        ///< sigma.
};

/** Result of a minimization run. */
struct OptResult
{
    std::vector<double> x;   ///< Best point found.
    double value = 0.0;      ///< Objective at x.
    int iterations = 0;      ///< Iterations consumed.
    int evaluations = 0;     ///< Objective evaluations.
    bool converged = false;  ///< Tolerance reached before max_iterations.
};

/**
 * Checkpointable Nelder–Mead state — everything the iteration loop
 * carries across committed steps.
 *
 * A default-constructed state means "start fresh"; a state restored
 * from a checkpoint resumes mid-run.  Steps are committed at simplex
 * iteration boundaries: within-iteration work is never externally
 * visible, so a resume after a kill replays at most one iteration and
 * the final result is bit-identical to an uninterrupted run.
 */
struct NelderMeadState
{
    std::vector<std::vector<double>> simplex; ///< n+1 vertices.
    std::vector<double> values;               ///< f at each vertex.
    int iterations = 0;
    int evaluations = 0;
    bool converged = false;
    bool initialized = false; ///< Initial simplex built and evaluated.
};

/**
 * Minimizes @p f starting from @p x0.
 *
 * @throws std::runtime_error for an empty starting point.
 */
OptResult nelderMead(const Objective &f, const std::vector<double> &x0,
                     const NelderMeadOptions &options = {});

/**
 * Resumable core of nelderMead(): continues from @p state (fresh or
 * checkpoint-restored) and leaves the final state in it.
 *
 * nelderMead() is exactly this with a default state and no hooks, so
 * an interrupted-and-resumed run produces bit-identical results.
 *
 * @throws run::CancelledError / run::TimedOutError from the hook
 *         guard; @p state then holds the last committed step and can
 *         be checkpointed or resumed directly.
 */
OptResult nelderMeadResume(const Objective &f,
                           const std::vector<double> &x0,
                           const NelderMeadOptions &options,
                           NelderMeadState &state,
                           const OptHooks &hooks = {});

} // namespace qaoa::opt

#endif // QAOA_OPT_NELDER_MEAD_HPP
