#include "opt/checkpoint.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/fs.hpp"

namespace qaoa::opt {

namespace {

constexpr const char *kFormat = "qaoa-opt-checkpoint-v1";

/** Minimal parser for one flat JSON object of string values. */
class FlatParser
{
  public:
    explicit FlatParser(const std::string &text) : text_(text) {}

    template <typename F>
    void
    parse(F &&on_pair)
    {
        skipSpace();
        expect('{');
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (true) {
            const std::string key = parseString();
            skipSpace();
            expect(':');
            skipSpace();
            on_pair(key, parseString());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                skipSpace();
                continue;
            }
            expect('}');
            return;
        }
    }

  private:
    char
    peek() const
    {
        QAOA_CHECK(pos_ < text_.size(),
                   "checkpoint JSON: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        QAOA_CHECK(peek() == c, "checkpoint JSON: expected '"
                                    << c << "' at offset " << pos_
                                    << ", got '" << peek() << "'");
        ++pos_;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (peek() != '"') {
            QAOA_CHECK(peek() != '\\',
                       "checkpoint JSON: escapes are not supported");
            out.push_back(text_[pos_++]);
        }
        ++pos_;
        return out;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

std::string
joinDoubles(const std::vector<double> &v)
{
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += formatHexDouble(v[i]);
    }
    return out;
}

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> out;
    if (text.empty())
        return out;
    std::size_t start = 0;
    for (;;) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<double>
splitDoubles(const std::string &text)
{
    std::vector<double> out;
    for (const std::string &item : splitList(text, ','))
        out.push_back(parseHexDouble(item));
    return out;
}

std::string
joinInts(const std::vector<int> &v)
{
    std::string out;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(v[i]);
    }
    return out;
}

int
parseInt(const std::string &text)
{
    std::size_t used = 0;
    int out = 0;
    try {
        out = std::stoi(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    QAOA_CHECK(used == text.size() && !text.empty(),
               "checkpoint: non-integer value: " << text);
    return out;
}

std::vector<int>
splitInts(const std::string &text)
{
    std::vector<int> out;
    for (const std::string &item : splitList(text, ','))
        out.push_back(parseInt(item));
    return out;
}

bool
parseBool(const std::string &text)
{
    QAOA_CHECK(text == "0" || text == "1",
               "checkpoint: boolean must be 0 or 1, got: " << text);
    return text == "1";
}

} // namespace

std::string
optPhaseName(OptPhase phase)
{
    switch (phase) {
      case OptPhase::Grid: return "grid";
      case OptPhase::Nm: return "nm";
      case OptPhase::Done: return "done";
    }
    QAOA_ASSERT(false, "unknown optimizer phase");
    return {};
}

std::string
formatHexDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

double
parseHexDouble(const std::string &text)
{
    QAOA_CHECK(!text.empty(), "checkpoint: empty number");
    const char *begin = text.c_str();
    char *end = nullptr;
    const double out = std::strtod(begin, &end);
    QAOA_CHECK(end == begin + text.size(),
               "checkpoint: malformed number: " << text);
    return out;
}

std::string
serializeCheckpoint(const OptCheckpoint &checkpoint)
{
    std::ostringstream os;
    bool first = true;
    auto field = [&](const char *key, const std::string &value) {
        os << (first ? "{\n" : ",\n") << "  \"" << key << "\": \""
           << value << "\"";
        first = false;
    };
    field("format", kFormat);
    field("problem_hash", checkpoint.problem_hash);
    field("phase", optPhaseName(checkpoint.phase));
    field("rng_state", checkpoint.rng_state);
    field("grid_cursor", joinInts(checkpoint.grid.cursor));
    field("grid_best_x", joinDoubles(checkpoint.grid.best_x));
    field("grid_best_value", formatHexDouble(checkpoint.grid.best_value));
    field("grid_evaluations",
          std::to_string(checkpoint.grid.evaluations));
    field("grid_done", checkpoint.grid.done ? "1" : "0");
    std::string simplex;
    for (std::size_t i = 0; i < checkpoint.nm.simplex.size(); ++i) {
        if (i)
            simplex += ';';
        simplex += joinDoubles(checkpoint.nm.simplex[i]);
    }
    field("nm_simplex", simplex);
    field("nm_values", joinDoubles(checkpoint.nm.values));
    field("nm_iterations", std::to_string(checkpoint.nm.iterations));
    field("nm_evaluations", std::to_string(checkpoint.nm.evaluations));
    field("nm_converged", checkpoint.nm.converged ? "1" : "0");
    field("nm_initialized", checkpoint.nm.initialized ? "1" : "0");
    field("final_x", joinDoubles(checkpoint.final_x));
    field("final_value", formatHexDouble(checkpoint.final_value));
    field("final_evaluations",
          std::to_string(checkpoint.final_evaluations));
    os << "\n}\n";
    return os.str();
}

OptCheckpoint
parseCheckpoint(const std::string &json)
{
    OptCheckpoint cp;
    bool saw_format = false;
    FlatParser parser(json);
    parser.parse([&](const std::string &key, const std::string &value) {
        if (key == "format") {
            QAOA_CHECK(value == kFormat,
                       "checkpoint: unsupported format \"" << value
                                                           << "\"");
            saw_format = true;
        } else if (key == "problem_hash") {
            cp.problem_hash = value;
        } else if (key == "phase") {
            if (value == "grid")
                cp.phase = OptPhase::Grid;
            else if (value == "nm")
                cp.phase = OptPhase::Nm;
            else if (value == "done")
                cp.phase = OptPhase::Done;
            else
                QAOA_CHECK(false,
                           "checkpoint: unknown phase \"" << value
                                                          << "\"");
        } else if (key == "rng_state") {
            cp.rng_state = value;
        } else if (key == "grid_cursor") {
            cp.grid.cursor = splitInts(value);
        } else if (key == "grid_best_x") {
            cp.grid.best_x = splitDoubles(value);
        } else if (key == "grid_best_value") {
            cp.grid.best_value = parseHexDouble(value);
        } else if (key == "grid_evaluations") {
            cp.grid.evaluations = parseInt(value);
        } else if (key == "grid_done") {
            cp.grid.done = parseBool(value);
        } else if (key == "nm_simplex") {
            cp.nm.simplex.clear();
            for (const std::string &row : splitList(value, ';'))
                cp.nm.simplex.push_back(splitDoubles(row));
        } else if (key == "nm_values") {
            cp.nm.values = splitDoubles(value);
        } else if (key == "nm_iterations") {
            cp.nm.iterations = parseInt(value);
        } else if (key == "nm_evaluations") {
            cp.nm.evaluations = parseInt(value);
        } else if (key == "nm_converged") {
            cp.nm.converged = parseBool(value);
        } else if (key == "nm_initialized") {
            cp.nm.initialized = parseBool(value);
        } else if (key == "final_x") {
            cp.final_x = splitDoubles(value);
        } else if (key == "final_value") {
            cp.final_value = parseHexDouble(value);
        } else if (key == "final_evaluations") {
            cp.final_evaluations = parseInt(value);
        } else {
            QAOA_CHECK(false,
                       "checkpoint: unknown key \"" << key << "\"");
        }
    });
    QAOA_CHECK(saw_format, "checkpoint: missing format field");
    return cp;
}

void
saveCheckpointFile(const std::string &path,
                   const OptCheckpoint &checkpoint)
{
    // fs::atomicWriteFile owns the crash-safety story (unique temp
    // name + rename, retry ladder) and reports OS-level detail —
    // "rename failed: No space left on device" instead of a bare
    // "write failed".  Every persistence write in this file routes
    // through it — the QS002 invariant (scripts/check_invariants.py)
    // rejects a direct write-open here, and the unique temp names
    // mean two concurrent savers need no lock: last rename wins with
    // both candidates complete.
    if (const auto fp = failpoint::poll("checkpoint.save"); fp.fires()) {
        errno = fp.error_number != 0 ? fp.error_number : EIO;
        throw std::runtime_error(
            fs::errnoDetail("checkpoint: injected save fault for " + path));
    }
    fs::atomicWriteFile(path, serializeCheckpoint(checkpoint));
}

bool
loadCheckpointFile(const std::string &path, OptCheckpoint &out)
{
    if (const auto fp = failpoint::poll("checkpoint.load"); fp.fires()) {
        errno = fp.error_number != 0 ? fp.error_number : EIO;
        throw std::runtime_error(
            fs::errnoDetail("checkpoint: injected load fault for " + path));
    }
    std::string body;
    // fs::readFile keeps ENOENT (resume with no checkpoint: false) a
    // different outcome from a transient read fault (throws) — a
    // flaky disk must not silently restart an optimization from
    // scratch and discard converged progress.
    if (!fs::readFile(path, body))
        return false;
    out = parseCheckpoint(body);
    return true;
}

std::string
artifactPathFor(const std::string &checkpoint_path)
{
    return checkpoint_path + ".qbin";
}

void
saveArtifactFile(const std::string &path, const std::string &bytes)
{
    fs::atomicWriteFile(path, bytes);
}

bool
loadArtifactFile(const std::string &path, std::string &out)
{
    return fs::readFile(path, out);
}

} // namespace qaoa::opt
