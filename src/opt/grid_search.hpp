/**
 * @file
 * Coarse grid search — seeding for the QAOA (γ, β) landscape.
 *
 * The p=1 landscape is periodic and can trap a purely local optimizer in
 * flat regions; a coarse grid pass followed by Nelder–Mead refinement
 * mirrors how QAOA parameters are found analytically/by sweep in the
 * paper's references [44], [45].
 */

#ifndef QAOA_OPT_GRID_SEARCH_HPP
#define QAOA_OPT_GRID_SEARCH_HPP

#include <vector>

#include "opt/nelder_mead.hpp"

namespace qaoa::opt {

/** One axis of the search box. */
struct GridAxis
{
    double lo = 0.0;   ///< Inclusive lower bound.
    double hi = 1.0;   ///< Inclusive upper bound.
    int points = 8;    ///< Samples along this axis (>= 2).
};

/**
 * Checkpointable grid-search state.
 *
 * A default-constructed state starts at the grid origin; a restored
 * one resumes at its odometer cursor.  Steps commit per evaluated grid
 * point, so a resumed sweep re-evaluates nothing and its result is
 * bit-identical to an uninterrupted one.
 */
struct GridSearchState
{
    std::vector<int> cursor;   ///< Odometer of the next point; empty =
                               ///< fresh start.
    std::vector<double> best_x;
    double best_value = 0.0;   ///< Valid once evaluations > 0.
    int evaluations = 0;
    bool done = false;
};

/**
 * Evaluates @p f on the Cartesian grid and returns the best point.
 */
OptResult gridSearch(const Objective &f, const std::vector<GridAxis> &axes);

/**
 * Resumable core of gridSearch(): continues the sweep from @p state
 * (fresh or checkpoint-restored) and leaves the final state in it.
 *
 * @throws run::CancelledError / run::TimedOutError from the hook
 *         guard; @p state then holds the last committed point and can
 *         be checkpointed or resumed directly.
 */
OptResult gridSearchResume(const Objective &f,
                           const std::vector<GridAxis> &axes,
                           GridSearchState &state,
                           const OptHooks &hooks = {});

/**
 * Grid seed + Nelder–Mead refinement: runs gridSearch(), then polishes
 * the winner with nelderMead().
 */
OptResult gridThenNelderMead(const Objective &f,
                             const std::vector<GridAxis> &axes,
                             const NelderMeadOptions &nm = {});

} // namespace qaoa::opt

#endif // QAOA_OPT_GRID_SEARCH_HPP
