/**
 * @file
 * Coarse grid search — seeding for the QAOA (γ, β) landscape.
 *
 * The p=1 landscape is periodic and can trap a purely local optimizer in
 * flat regions; a coarse grid pass followed by Nelder–Mead refinement
 * mirrors how QAOA parameters are found analytically/by sweep in the
 * paper's references [44], [45].
 */

#ifndef QAOA_OPT_GRID_SEARCH_HPP
#define QAOA_OPT_GRID_SEARCH_HPP

#include <vector>

#include "opt/nelder_mead.hpp"

namespace qaoa::opt {

/** One axis of the search box. */
struct GridAxis
{
    double lo = 0.0;   ///< Inclusive lower bound.
    double hi = 1.0;   ///< Inclusive upper bound.
    int points = 8;    ///< Samples along this axis (>= 2).
};

/**
 * Evaluates @p f on the Cartesian grid and returns the best point.
 */
OptResult gridSearch(const Objective &f, const std::vector<GridAxis> &axes);

/**
 * Grid seed + Nelder–Mead refinement: runs gridSearch(), then polishes
 * the winner with nelderMead().
 */
OptResult gridThenNelderMead(const Objective &f,
                             const std::vector<GridAxis> &axes,
                             const NelderMeadOptions &nm = {});

} // namespace qaoa::opt

#endif // QAOA_OPT_GRID_SEARCH_HPP
