#include "sim/noise.hpp"

#include <vector>

#include "common/error.hpp"
#include "sim/success.hpp"

namespace qaoa::sim {

namespace {

/** Applies a uniformly random non-identity Pauli to qubit @p q. */
void
randomPauli1q(Statevector &state, int q, Rng &rng)
{
    switch (rng.uniformInt(0, 2)) {
      case 0:
        state.apply(circuit::Gate::x(q));
        break;
      case 1:
        state.apply(circuit::Gate::y(q));
        break;
      default:
        state.apply(circuit::Gate::z(q));
        break;
    }
}

/** Applies a random non-identity two-qubit Pauli (one of 15). */
void
randomPauli2q(Statevector &state, int a, int b, Rng &rng)
{
    int idx = rng.uniformInt(1, 15); // base-4 digit pair, 00 excluded
    int pa = idx & 3;
    int pb = (idx >> 2) & 3;
    auto apply_one = [&](int q, int p) {
        switch (p) {
          case 1: state.apply(circuit::Gate::x(q)); break;
          case 2: state.apply(circuit::Gate::y(q)); break;
          case 3: state.apply(circuit::Gate::z(q)); break;
          default: break;
        }
    };
    apply_one(a, pa);
    apply_one(b, pb);
}

} // namespace

Counts
noisySample(const circuit::Circuit &physical,
            const hw::CalibrationData &calib, std::uint64_t shots, Rng &rng,
            const NoiseOptions &opts)
{
    QAOA_CHECK(opts.trajectories >= 1, "need at least one trajectory");
    QAOA_CHECK(shots >= 1, "need at least one shot");

    // Measurement map (qubit, cbit) and per-qubit readout errors.
    std::vector<std::pair<int, int>> measures;
    for (const circuit::Gate &g : physical.gates())
        if (g.type == circuit::GateType::MEASURE)
            measures.emplace_back(g.q0, g.cbit);

    const std::uint64_t traj_count =
        static_cast<std::uint64_t>(opts.trajectories);
    Counts counts;
    for (std::uint64_t t = 0; t < traj_count; ++t) {
        std::uint64_t traj_shots = shots / traj_count +
                                   (t < shots % traj_count ? 1 : 0);
        if (traj_shots == 0)
            continue;

        Statevector state(physical.numQubits());
        for (const circuit::Gate &g : physical.gates()) {
            state.apply(g);
            if (g.type == circuit::GateType::MEASURE ||
                g.type == circuit::GateType::BARRIER)
                continue;
            double err = gateErrorRate(g, calib);
            if (err > 0.0 && rng.bernoulli(err)) {
                if (g.arity() == 2)
                    randomPauli2q(state, g.q0, g.q1, rng);
                else
                    randomPauli1q(state, g.q0, rng);
            }
        }

        Counts raw = state.sampleCounts(traj_shots, rng);
        for (const auto &[basis, count] : raw) {
            // Per-shot readout flips would be ideal; applying them per
            // basis-group shot keeps the cost linear in distinct
            // outcomes.
            for (std::uint64_t s = 0; s < count; ++s) {
                std::uint64_t bits = 0;
                for (const auto &[q, c] : measures) {
                    bool bit = (basis >> q) & 1ULL;
                    if (opts.readout_noise &&
                        rng.bernoulli(calib.readoutError(q)))
                        bit = !bit;
                    if (bit)
                        bits |= 1ULL << c;
                }
                ++counts[bits];
            }
        }
    }
    return counts;
}

} // namespace qaoa::sim
