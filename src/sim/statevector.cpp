#include "sim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace qaoa::sim {

namespace {

/** Inserts a 0 at the bit position of @p bit: enumerate pair bases by
 *  mapping k in [0, 2^{n-1}) to the k-th index with that bit clear. */
inline std::uint64_t
expandBit(std::uint64_t k, std::uint64_t bit)
{
    std::uint64_t low = k & (bit - 1);
    return ((k - low) << 1) | low;
}

/** Inserts 0s at both bit positions (masks must differ). */
inline std::uint64_t
expandTwoBits(std::uint64_t k, std::uint64_t bit_a, std::uint64_t bit_b)
{
    std::uint64_t lo = std::min(bit_a, bit_b);
    std::uint64_t hi = std::max(bit_a, bit_b);
    return expandBit(expandBit(k, lo), hi);
}

inline Complex
expi(double phi)
{
    return {std::cos(phi), std::sin(phi)};
}

} // namespace

Statevector::Statevector(int num_qubits, const run::RunGuard *guard)
    : num_qubits_(num_qubits), guard_(guard)
{
    QAOA_CHECK(num_qubits >= 1 && num_qubits <= 26,
               "statevector supports 1..26 qubits, got " << num_qubits);
    if (guard_)
        guard_->checkAllocation("statevector",
                                sizeof(Complex) *
                                    (1ULL << num_qubits));
    amps_.assign(1ULL << num_qubits, Complex{0.0, 0.0});
    amps_[0] = Complex{1.0, 0.0};
}

Complex
Statevector::amplitude(std::uint64_t index) const
{
    QAOA_CHECK(index < amps_.size(), "basis index out of range");
    return amps_[index];
}

void
Statevector::applyMatrix1q(const Matrix2 &m, int q)
{
    QAOA_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::uint64_t bit = 1ULL << q;
    par::parallelFor(0, amps_.size() >> 1,
                     [&](std::uint64_t kb, std::uint64_t ke) {
        for (std::uint64_t k = kb; k < ke; ++k) {
            std::uint64_t i = expandBit(k, bit);
            std::uint64_t j = i | bit;
            Complex a0 = amps_[i];
            Complex a1 = amps_[j];
            amps_[i] = m[0] * a0 + m[1] * a1;
            amps_[j] = m[2] * a0 + m[3] * a1;
        }
    });
}

void
Statevector::applyMatrix2q(const Matrix4 &m, int q_low, int q_high)
{
    QAOA_CHECK(q_low >= 0 && q_low < num_qubits_ && q_high >= 0 &&
                   q_high < num_qubits_ && q_low != q_high,
               "invalid two-qubit operands");
    const std::uint64_t bl = 1ULL << q_low;
    const std::uint64_t bh = 1ULL << q_high;
    par::parallelFor(0, amps_.size() >> 2,
                     [&](std::uint64_t kb, std::uint64_t ke) {
        for (std::uint64_t k = kb; k < ke; ++k) {
            // Basis offsets within the 4-dim subspace, index = (high, low).
            std::uint64_t i00 = expandTwoBits(k, bl, bh);
            std::uint64_t i01 = i00 | bl;
            std::uint64_t i10 = i00 | bh;
            std::uint64_t i11 = i00 | bl | bh;
            Complex a00 = amps_[i00], a01 = amps_[i01];
            Complex a10 = amps_[i10], a11 = amps_[i11];
            amps_[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
            amps_[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
            amps_[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
            amps_[i11] =
                m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
        }
    });
}

void
Statevector::applyDiag1q(int q, Complex d0, Complex d1)
{
    QAOA_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::uint64_t bit = 1ULL << q;
    par::parallelFor(0, amps_.size(),
                     [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i)
            amps_[i] *= (i & bit) ? d1 : d0;
    });
}

void
Statevector::applyDiag2q(int q_low, int q_high, Complex d00, Complex d01,
                         Complex d10, Complex d11)
{
    QAOA_CHECK(q_low >= 0 && q_low < num_qubits_ && q_high >= 0 &&
                   q_high < num_qubits_ && q_low != q_high,
               "invalid two-qubit operands");
    const std::uint64_t bl = 1ULL << q_low;
    const std::uint64_t bh = 1ULL << q_high;
    const Complex d[4] = {d00, d01, d10, d11};
    par::parallelFor(0, amps_.size(),
                     [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) {
            unsigned sub = ((i & bh) ? 2u : 0u) | ((i & bl) ? 1u : 0u);
            amps_[i] *= d[sub];
        }
    });
}

void
Statevector::applyXKernel(int q)
{
    const std::uint64_t bit = 1ULL << q;
    par::parallelFor(0, amps_.size() >> 1,
                     [&](std::uint64_t kb, std::uint64_t ke) {
        for (std::uint64_t k = kb; k < ke; ++k) {
            std::uint64_t i = expandBit(k, bit);
            std::swap(amps_[i], amps_[i | bit]);
        }
    });
}

void
Statevector::applyHKernel(int q)
{
    const std::uint64_t bit = 1ULL << q;
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    par::parallelFor(0, amps_.size() >> 1,
                     [&](std::uint64_t kb, std::uint64_t ke) {
        for (std::uint64_t k = kb; k < ke; ++k) {
            std::uint64_t i = expandBit(k, bit);
            std::uint64_t j = i | bit;
            Complex a0 = amps_[i];
            Complex a1 = amps_[j];
            amps_[i] = inv_sqrt2 * (a0 + a1);
            amps_[j] = inv_sqrt2 * (a0 - a1);
        }
    });
}

void
Statevector::applyRXKernel(int q, double theta)
{
    const std::uint64_t bit = 1ULL << q;
    const double c = std::cos(theta / 2.0);
    const Complex mis{0.0, -std::sin(theta / 2.0)};
    par::parallelFor(0, amps_.size() >> 1,
                     [&](std::uint64_t kb, std::uint64_t ke) {
        for (std::uint64_t k = kb; k < ke; ++k) {
            std::uint64_t i = expandBit(k, bit);
            std::uint64_t j = i | bit;
            Complex a0 = amps_[i];
            Complex a1 = amps_[j];
            amps_[i] = c * a0 + mis * a1;
            amps_[j] = mis * a0 + c * a1;
        }
    });
}

void
Statevector::applyCnotKernel(int control, int target)
{
    const std::uint64_t bc = 1ULL << control;
    const std::uint64_t bt = 1ULL << target;
    par::parallelFor(0, amps_.size() >> 2,
                     [&](std::uint64_t kb, std::uint64_t ke) {
        for (std::uint64_t k = kb; k < ke; ++k) {
            std::uint64_t base = expandTwoBits(k, bc, bt);
            std::swap(amps_[base | bc], amps_[base | bc | bt]);
        }
    });
}

void
Statevector::applySwapKernel(int a, int b)
{
    const std::uint64_t ba = 1ULL << a;
    const std::uint64_t bb = 1ULL << b;
    par::parallelFor(0, amps_.size() >> 2,
                     [&](std::uint64_t kb, std::uint64_t ke) {
        for (std::uint64_t k = kb; k < ke; ++k) {
            std::uint64_t base = expandTwoBits(k, ba, bb);
            std::swap(amps_[base | ba], amps_[base | bb]);
        }
    });
}

void
Statevector::apply(const circuit::Gate &g)
{
    using circuit::GateType;
    switch (g.type) {
      case GateType::MEASURE:
      case GateType::BARRIER:
        return;
      // Diagonal fast paths: one multiply per amplitude, no pairing.
      case GateType::Z:
        applyDiag1q(g.q0, Complex{1.0, 0.0}, Complex{-1.0, 0.0});
        return;
      case GateType::RZ:
        applyDiag1q(g.q0, expi(-g.params[0] / 2.0), expi(g.params[0] / 2.0));
        return;
      case GateType::U1:
        applyDiag1q(g.q0, Complex{1.0, 0.0}, expi(g.params[0]));
        return;
      case GateType::CZ:
        applyDiag2q(g.q0, g.q1, Complex{1.0, 0.0}, Complex{1.0, 0.0},
                    Complex{1.0, 0.0}, Complex{-1.0, 0.0});
        return;
      case GateType::CPHASE: {
        Complex phase = expi(g.params[0]);
        applyDiag2q(g.q0, g.q1, Complex{1.0, 0.0}, phase, phase,
                    Complex{1.0, 0.0});
        return;
      }
      // Dedicated pair/permutation kernels.
      case GateType::X: {
        QAOA_CHECK(g.q0 >= 0 && g.q0 < num_qubits_, "qubit out of range");
        applyXKernel(g.q0);
        return;
      }
      case GateType::H: {
        QAOA_CHECK(g.q0 >= 0 && g.q0 < num_qubits_, "qubit out of range");
        applyHKernel(g.q0);
        return;
      }
      case GateType::RX: {
        QAOA_CHECK(g.q0 >= 0 && g.q0 < num_qubits_, "qubit out of range");
        applyRXKernel(g.q0, g.params[0]);
        return;
      }
      case GateType::CNOT: {
        QAOA_CHECK(g.q0 >= 0 && g.q0 < num_qubits_ && g.q1 >= 0 &&
                       g.q1 < num_qubits_ && g.q0 != g.q1,
                   "invalid two-qubit operands");
        applyCnotKernel(g.q0, g.q1);
        return;
      }
      case GateType::SWAP: {
        QAOA_CHECK(g.q0 >= 0 && g.q0 < num_qubits_ && g.q1 >= 0 &&
                       g.q1 < num_qubits_ && g.q0 != g.q1,
                   "invalid two-qubit operands");
        applySwapKernel(g.q0, g.q1);
        return;
      }
      // Generic dense-matrix fallback (Y, RY, U2, U3).
      default:
        if (g.arity() == 1) {
            applyMatrix1q(gateMatrix1q(g), g.q0);
        } else {
            // gateMatrix2q() is in |q1 q0> ordering: operand q0 is the
            // low bit.
            applyMatrix2q(gateMatrix2q(g), g.q0, g.q1);
        }
        return;
    }
}

void
Statevector::apply(const circuit::Circuit &circuit)
{
    QAOA_CHECK(circuit.numQubits() <= num_qubits_,
               "circuit register larger than statevector");
    for (const circuit::Gate &g : circuit.gates()) {
        if (guard_)
            guard_->poll("statevector circuit sweep");
        apply(g);
    }
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    par::parallelFor(0, amps_.size(),
                     [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i)
            probs[i] = std::norm(amps_[i]);
    });
    return probs;
}

double
Statevector::probabilityOfOne(int q) const
{
    QAOA_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::uint64_t bit = 1ULL << q;
    return par::parallelReduceSum(0, amps_.size(),
                                  [&](std::uint64_t b, std::uint64_t e) {
        double p = 0.0;
        for (std::uint64_t i = b; i < e; ++i)
            if (i & bit)
                p += std::norm(amps_[i]);
        return p;
    });
}

void
Statevector::collapse(int q, bool outcome)
{
    QAOA_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::uint64_t bit = 1ULL << q;
    // Single fused sweep: zero the discarded branch while accumulating
    // the kept probability per chunk (deterministic combine order).
    double keep = par::parallelReduceSum(0, amps_.size(),
                                         [&](std::uint64_t b,
                                             std::uint64_t e) {
        double chunk_keep = 0.0;
        for (std::uint64_t i = b; i < e; ++i) {
            bool is_one = (i & bit) != 0;
            if (is_one == outcome)
                chunk_keep += std::norm(amps_[i]);
            else
                amps_[i] = Complex{0.0, 0.0};
        }
        return chunk_keep;
    });
    QAOA_CHECK(keep > 1e-15,
               "collapse onto zero-probability outcome on q" << q);
    const double scale = 1.0 / std::sqrt(keep);
    par::parallelFor(0, amps_.size(),
                     [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i)
            amps_[i] *= scale;
    });
}

Counts
Statevector::sampleCounts(std::uint64_t shots, Rng &rng) const
{
    // Inverse-CDF sampling over the cumulative distribution; O(log N) per
    // shot after an O(N) prefix pass.  The prefix sum stays serial: it is
    // a strict loop dependence and must be identical for any thread
    // count.
    std::vector<double> cdf(amps_.size());
    double acc = 0.0;
    std::size_t last_nonzero = 0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        double p = std::norm(amps_[i]);
        if (p > 0.0)
            last_nonzero = i;
        acc += p;
        cdf[i] = acc;
    }
    QAOA_CHECK(acc > 0.0, "sampling a zero statevector");
    Counts counts;
    for (std::uint64_t s = 0; s < shots; ++s) {
        double r = rng.uniformReal(0.0, acc);
        auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
        std::uint64_t idx = static_cast<std::uint64_t>(
            std::distance(cdf.begin(), it));
        // A flat CDF tail (trailing zero-probability states) makes
        // upper_bound land past the last state that can actually occur;
        // clamp to it rather than to the raw last index, which would
        // credit shots to a zero-probability basis state.
        if (idx > last_nonzero)
            idx = last_nonzero;
        ++counts[idx];
    }
    return counts;
}

double
Statevector::norm() const
{
    return par::parallelReduceSum(0, amps_.size(),
                                  [&](std::uint64_t b, std::uint64_t e) {
        double n = 0.0;
        for (std::uint64_t i = b; i < e; ++i)
            n += std::norm(amps_[i]);
        return n;
    });
}

double
Statevector::overlap(const Statevector &other) const
{
    QAOA_CHECK(num_qubits_ == other.num_qubits_,
               "overlap of different-size statevectors");
    double re = par::parallelReduceSum(0, amps_.size(),
                                       [&](std::uint64_t b, std::uint64_t e) {
        double acc = 0.0;
        for (std::uint64_t i = b; i < e; ++i)
            acc += (std::conj(amps_[i]) * other.amps_[i]).real();
        return acc;
    });
    double im = par::parallelReduceSum(0, amps_.size(),
                                       [&](std::uint64_t b, std::uint64_t e) {
        double acc = 0.0;
        for (std::uint64_t i = b; i < e; ++i)
            acc += (std::conj(amps_[i]) * other.amps_[i]).imag();
        return acc;
    });
    return std::norm(Complex{re, im});
}

Counts
runAndSample(const circuit::Circuit &circuit, std::uint64_t shots, Rng &rng)
{
    Statevector state(circuit.numQubits());
    state.apply(circuit);

    // Measurement map: classical bit <- qubit.
    std::vector<std::pair<int, int>> measures; // (qubit, cbit)
    for (const circuit::Gate &g : circuit.gates())
        if (g.type == circuit::GateType::MEASURE)
            measures.emplace_back(g.q0, g.cbit);

    Counts raw = state.sampleCounts(shots, rng);
    // No MEASURE gates: return raw basis counts rather than mapping
    // every shot onto classical bitstring 0.
    if (measures.empty())
        return raw;
    Counts mapped;
    for (const auto &[basis, count] : raw) {
        std::uint64_t bits = 0;
        for (const auto &[q, c] : measures)
            if ((basis >> q) & 1ULL)
                bits |= 1ULL << c;
        mapped[bits] += count;
    }
    return mapped;
}

} // namespace qaoa::sim
