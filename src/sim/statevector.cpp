#include "sim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qaoa::sim {

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits)
{
    QAOA_CHECK(num_qubits >= 1 && num_qubits <= 26,
               "statevector supports 1..26 qubits, got " << num_qubits);
    amps_.assign(1ULL << num_qubits, Complex{0.0, 0.0});
    amps_[0] = Complex{1.0, 0.0};
}

Complex
Statevector::amplitude(std::uint64_t index) const
{
    QAOA_CHECK(index < amps_.size(), "basis index out of range");
    return amps_[index];
}

void
Statevector::applyMatrix1q(const Matrix2 &m, int q)
{
    QAOA_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::uint64_t bit = 1ULL << q;
    const std::uint64_t size = amps_.size();
    for (std::uint64_t i = 0; i < size; ++i) {
        if (i & bit)
            continue;
        std::uint64_t j = i | bit;
        Complex a0 = amps_[i];
        Complex a1 = amps_[j];
        amps_[i] = m[0] * a0 + m[1] * a1;
        amps_[j] = m[2] * a0 + m[3] * a1;
    }
}

void
Statevector::applyMatrix2q(const Matrix4 &m, int q_low, int q_high)
{
    QAOA_CHECK(q_low >= 0 && q_low < num_qubits_ && q_high >= 0 &&
                   q_high < num_qubits_ && q_low != q_high,
               "invalid two-qubit operands");
    const std::uint64_t bl = 1ULL << q_low;
    const std::uint64_t bh = 1ULL << q_high;
    const std::uint64_t size = amps_.size();
    for (std::uint64_t i = 0; i < size; ++i) {
        if ((i & bl) || (i & bh))
            continue;
        // Basis offsets within the 4-dim subspace, index = (high, low).
        std::uint64_t i00 = i;
        std::uint64_t i01 = i | bl;
        std::uint64_t i10 = i | bh;
        std::uint64_t i11 = i | bl | bh;
        Complex a00 = amps_[i00], a01 = amps_[i01];
        Complex a10 = amps_[i10], a11 = amps_[i11];
        amps_[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
        amps_[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
        amps_[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
        amps_[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
    }
}

void
Statevector::apply(const circuit::Gate &g)
{
    using circuit::GateType;
    if (g.type == GateType::MEASURE || g.type == GateType::BARRIER)
        return;
    if (g.arity() == 1) {
        applyMatrix1q(gateMatrix1q(g), g.q0);
    } else {
        // gateMatrix2q() is in |q1 q0> ordering: operand q0 is the low
        // bit.
        applyMatrix2q(gateMatrix2q(g), g.q0, g.q1);
    }
}

void
Statevector::apply(const circuit::Circuit &circuit)
{
    QAOA_CHECK(circuit.numQubits() <= num_qubits_,
               "circuit register larger than statevector");
    for (const circuit::Gate &g : circuit.gates())
        apply(g);
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        probs[i] = std::norm(amps_[i]);
    return probs;
}

double
Statevector::probabilityOfOne(int q) const
{
    QAOA_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::uint64_t bit = 1ULL << q;
    double p = 0.0;
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        if (i & bit)
            p += std::norm(amps_[i]);
    return p;
}

void
Statevector::collapse(int q, bool outcome)
{
    QAOA_CHECK(q >= 0 && q < num_qubits_, "qubit out of range");
    const std::uint64_t bit = 1ULL << q;
    double keep = 0.0;
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        bool is_one = (i & bit) != 0;
        if (is_one == outcome)
            keep += std::norm(amps_[i]);
        else
            amps_[i] = Complex{0.0, 0.0};
    }
    QAOA_CHECK(keep > 1e-15,
               "collapse onto zero-probability outcome on q" << q);
    double scale = 1.0 / std::sqrt(keep);
    for (Complex &a : amps_)
        a *= scale;
}

Counts
Statevector::sampleCounts(std::uint64_t shots, Rng &rng) const
{
    // Inverse-CDF sampling over the cumulative distribution; O(log N) per
    // shot after an O(N) prefix pass.
    std::vector<double> cdf(amps_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        cdf[i] = acc;
    }
    Counts counts;
    for (std::uint64_t s = 0; s < shots; ++s) {
        double r = rng.uniformReal(0.0, acc);
        auto it = std::upper_bound(cdf.begin(), cdf.end(), r);
        std::uint64_t idx = static_cast<std::uint64_t>(
            std::distance(cdf.begin(), it));
        if (idx >= amps_.size())
            idx = amps_.size() - 1;
        ++counts[idx];
    }
    return counts;
}

double
Statevector::norm() const
{
    double n = 0.0;
    for (const Complex &a : amps_)
        n += std::norm(a);
    return n;
}

double
Statevector::overlap(const Statevector &other) const
{
    QAOA_CHECK(num_qubits_ == other.num_qubits_,
               "overlap of different-size statevectors");
    Complex dot{0.0, 0.0};
    for (std::size_t i = 0; i < amps_.size(); ++i)
        dot += std::conj(amps_[i]) * other.amps_[i];
    return std::norm(dot);
}

Counts
runAndSample(const circuit::Circuit &circuit, std::uint64_t shots, Rng &rng)
{
    Statevector state(circuit.numQubits());
    state.apply(circuit);

    // Measurement map: classical bit <- qubit.
    std::vector<std::pair<int, int>> measures; // (qubit, cbit)
    for (const circuit::Gate &g : circuit.gates())
        if (g.type == circuit::GateType::MEASURE)
            measures.emplace_back(g.q0, g.cbit);

    Counts raw = state.sampleCounts(shots, rng);
    Counts mapped;
    for (const auto &[basis, count] : raw) {
        std::uint64_t bits = 0;
        for (const auto &[q, c] : measures)
            if ((basis >> q) & 1ULL)
                bits |= 1ULL << c;
        mapped[bits] += count;
    }
    return mapped;
}

} // namespace qaoa::sim
