#include "sim/success.hpp"

#include "common/error.hpp"

namespace qaoa::sim {

double
gateErrorRate(const circuit::Gate &g, const hw::CalibrationData &calib)
{
    using circuit::GateType;
    switch (g.type) {
      case GateType::U1:
      case GateType::BARRIER:
        return 0.0;
      case GateType::MEASURE:
        return calib.readoutError(g.q0);
      case GateType::CNOT:
        return calib.cnotError(g.q0, g.q1);
      case GateType::CPHASE:
      case GateType::CZ: {
        double s = 1.0 - calib.cnotError(g.q0, g.q1);
        return 1.0 - s * s;
      }
      case GateType::SWAP: {
        double s = 1.0 - calib.cnotError(g.q0, g.q1);
        return 1.0 - s * s * s;
      }
      default:
        return calib.oneQubitError(g.q0);
    }
}

double
successProbability(const circuit::Circuit &physical,
                   const hw::CalibrationData &calib)
{
    double p = 1.0;
    for (const circuit::Gate &g : physical.gates())
        p *= 1.0 - gateErrorRate(g, calib);
    QAOA_ASSERT(p > 0.0 && p <= 1.0 + 1e-12,
                "success probability outside (0, 1]");
    return p;
}

} // namespace qaoa::sim
