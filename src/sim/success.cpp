#include "sim/success.hpp"

#include "analysis/esp.hpp"

namespace qaoa::sim {

double
gateErrorRate(const circuit::Gate &g, const hw::CalibrationData &calib)
{
    return analysis::gateErrorRate(g, calib);
}

double
successProbability(const circuit::Circuit &physical,
                   const hw::CalibrationData &calib)
{
    return analysis::estimateEsp(physical, calib).total;
}

} // namespace qaoa::sim
