/**
 * @file
 * Noisy execution — the hardware stand-in for the ARG experiments.
 *
 * The paper validates on the real ibmq_16_melbourne; we substitute a
 * Monte-Carlo trajectory simulator with a calibrated depolarizing error
 * channel: after each gate, with probability equal to the gate's
 * calibrated error rate, a uniformly random non-identity Pauli is applied
 * to the gate's qubits; readout errors flip sampled bits independently.
 * This preserves the monotonic relationship between accumulated gate
 * error / depth and output-distribution degradation that ARG measures
 * (DESIGN.md, substitution table).
 */

#ifndef QAOA_SIM_NOISE_HPP
#define QAOA_SIM_NOISE_HPP

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "hardware/calibration.hpp"
#include "sim/statevector.hpp"

namespace qaoa::sim {

/** Options for noisy sampling. */
struct NoiseOptions
{
    /** Monte-Carlo trajectories; shots are split evenly across them. */
    int trajectories = 32;

    /** Apply classical readout bit flips. */
    bool readout_noise = true;
};

/**
 * Samples a physical circuit under calibrated depolarizing noise.
 *
 * @param physical Hardware-compliant circuit (operands are physical
 *        qubits; MEASURE gates define the classical-bit mapping).
 * @param calib    Device calibration supplying per-gate error rates.
 * @param shots    Total measurement shots.
 * @param rng      Randomness source (trajectory errors + sampling).
 * @param opts     See NoiseOptions.
 * @return Histogram over classical bitstrings (same convention as
 *         runAndSample()).
 */
Counts noisySample(const circuit::Circuit &physical,
                   const hw::CalibrationData &calib, std::uint64_t shots,
                   Rng &rng, const NoiseOptions &opts = {});

} // namespace qaoa::sim

#endif // QAOA_SIM_NOISE_HPP
