/**
 * @file
 * Dense statevector simulator.
 *
 * Exact simulation of the library's gate set for up to 26 qubits (the
 * evaluation needs at most 20 for ibmq_20_tokyo; the 6x6-grid studies
 * reach 24+).  This is the "qiskit simulator" stand-in used to obtain
 * the noiseless approximation ratio r0 of the ARG metric (§V-A).
 *
 * Gate application dispatches to specialized kernels (see apply()):
 * diagonal gates touch each amplitude exactly once with one multiply;
 * X/H/RX/CNOT/SWAP use dedicated pair kernels; everything else falls
 * back to the generic dense 2x2/4x4 matrix product.  All amplitude
 * sweeps run through qaoa::par::parallelFor, so large registers use
 * every core (QAOA_THREADS / par::setThreadCount) while results stay
 * bit-identical to the single-threaded path.
 */

#ifndef QAOA_SIM_STATEVECTOR_HPP
#define QAOA_SIM_STATEVECTOR_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/guard.hpp"
#include "common/rng.hpp"
#include "sim/gate_matrix.hpp"

namespace qaoa::sim {

/** Counts of measured bitstrings (key = basis state index). */
using Counts = std::map<std::uint64_t, std::uint64_t>;

/**
 * Dense complex statevector over n qubits.
 *
 * Qubit i is bit i of the basis-state index.  Gates are applied in place;
 * MEASURE and BARRIER gates are ignored by apply() (sampling handles
 * measurement — see sampleCounts()).
 */
class Statevector
{
  public:
    /**
     * Initializes |0...0> over @p num_qubits qubits.
     *
     * With a non-null @p guard, the allocation is first checked
     * against the guard's max_statevector_bytes limit (16 bytes per
     * amplitude) — ResourceExceededError instead of an OOM kill — and
     * apply(Circuit) polls the guard once per gate.  The guard is
     * non-owning and must outlive the statevector.
     */
    explicit Statevector(int num_qubits,
                         const run::RunGuard *guard = nullptr);

    /** Number of qubits. */
    int numQubits() const { return num_qubits_; }

    /** Amplitude of basis state @p index. */
    Complex amplitude(std::uint64_t index) const;

    /**
     * Applies one gate (unitaries only; MEASURE/BARRIER are no-ops).
     *
     * Kernel dispatch: Z/RZ/U1 -> 1q diagonal, CZ/CPHASE -> 2q
     * diagonal, X/H/RX -> dedicated pair kernels, CNOT/SWAP ->
     * permutation kernels, Y/RY/U2/U3 -> generic applyMatrix1q().
     */
    void apply(const circuit::Gate &g);

    /** Applies every gate of a circuit in order. */
    void apply(const circuit::Circuit &circuit);

    /** Applies an explicit 2x2 unitary to qubit @p q (generic path). */
    void applyMatrix1q(const Matrix2 &m, int q);

    /** Applies an explicit 4x4 unitary (q_low = low bit, q_high = high). */
    void applyMatrix2q(const Matrix4 &m, int q_low, int q_high);

    /** Probability of each basis state (|amp|^2). */
    std::vector<double> probabilities() const;

    /** Probability that qubit @p q measures 1. */
    double probabilityOfOne(int q) const;

    /**
     * Projects qubit @p q onto the given measurement outcome and
     * renormalizes (used by trajectory noise channels).
     *
     * @throws std::runtime_error when the outcome has zero probability.
     */
    void collapse(int q, bool outcome);

    /**
     * Samples @p shots measurement outcomes of all qubits.
     *
     * Shots never land on zero-probability basis states: inverse-CDF
     * lookups that fall past the last nonzero-probability entry (a flat
     * CDF tail) are clamped to that entry, not to the raw last index.
     *
     * @return Histogram basis-state index -> count.
     */
    Counts sampleCounts(std::uint64_t shots, Rng &rng) const;

    /** Squared norm (should stay 1 within numerical error). */
    double norm() const;

    /**
     * Fidelity-style overlap |<this|other>|^2 — used by tests to compare
     * circuits up to global phase.
     */
    double overlap(const Statevector &other) const;

  private:
    /** amps[i] *= (bit set ? d1 : d0) — no amplitude pairing. */
    void applyDiag1q(int q, Complex d0, Complex d1);

    /** amps[i] *= d[high bit << 1 | low bit] — no amplitude pairing. */
    void applyDiag2q(int q_low, int q_high, Complex d00, Complex d01,
                     Complex d10, Complex d11);

    void applyXKernel(int q);
    void applyHKernel(int q);
    void applyRXKernel(int q, double theta);
    void applyCnotKernel(int control, int target);
    void applySwapKernel(int a, int b);

    int num_qubits_;
    const run::RunGuard *guard_ = nullptr; ///< Polled per gate; may be null.
    std::vector<Complex> amps_;
};

/**
 * Runs a circuit from |0...0> and samples its measured classical bits.
 *
 * Honors the MEASURE gates: classical bit `cbit` receives the outcome of
 * the measured qubit, so compiled circuits (whose measured physical
 * qubits differ from the logical indices) produce logically-indexed
 * bitstrings.  Qubits without a MEASURE gate contribute 0 bits.
 *
 * A circuit with no MEASURE gates at all returns the raw basis-state
 * counts (every qubit implicitly measured into its own index) instead
 * of collapsing every shot onto bitstring 0.
 *
 * @return Histogram over classical bitstrings.
 */
Counts runAndSample(const circuit::Circuit &circuit, std::uint64_t shots,
                    Rng &rng);

} // namespace qaoa::sim

#endif // QAOA_SIM_STATEVECTOR_HPP
