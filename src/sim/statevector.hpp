/**
 * @file
 * Dense statevector simulator.
 *
 * Exact simulation of the library's gate set for up to ~22 qubits (the
 * evaluation needs at most 20 for ibmq_20_tokyo).  This is the "qiskit
 * simulator" stand-in used to obtain the noiseless approximation ratio r0
 * of the ARG metric (§V-A).
 */

#ifndef QAOA_SIM_STATEVECTOR_HPP
#define QAOA_SIM_STATEVECTOR_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sim/gate_matrix.hpp"

namespace qaoa::sim {

/** Counts of measured bitstrings (key = basis state index). */
using Counts = std::map<std::uint64_t, std::uint64_t>;

/**
 * Dense complex statevector over n qubits.
 *
 * Qubit i is bit i of the basis-state index.  Gates are applied in place;
 * MEASURE and BARRIER gates are ignored by apply() (sampling handles
 * measurement — see sampleCounts()).
 */
class Statevector
{
  public:
    /** Initializes |0...0> over @p num_qubits qubits. */
    explicit Statevector(int num_qubits);

    /** Number of qubits. */
    int numQubits() const { return num_qubits_; }

    /** Amplitude of basis state @p index. */
    Complex amplitude(std::uint64_t index) const;

    /** Applies one gate (unitaries only; MEASURE/BARRIER are no-ops). */
    void apply(const circuit::Gate &g);

    /** Applies every gate of a circuit in order. */
    void apply(const circuit::Circuit &circuit);

    /** Applies an explicit 2x2 unitary to qubit @p q. */
    void applyMatrix1q(const Matrix2 &m, int q);

    /** Applies an explicit 4x4 unitary (q_low = low bit, q_high = high). */
    void applyMatrix2q(const Matrix4 &m, int q_low, int q_high);

    /** Probability of each basis state (|amp|^2). */
    std::vector<double> probabilities() const;

    /** Probability that qubit @p q measures 1. */
    double probabilityOfOne(int q) const;

    /**
     * Projects qubit @p q onto the given measurement outcome and
     * renormalizes (used by trajectory noise channels).
     *
     * @throws std::runtime_error when the outcome has zero probability.
     */
    void collapse(int q, bool outcome);

    /**
     * Samples @p shots measurement outcomes of all qubits.
     *
     * @return Histogram basis-state index -> count.
     */
    Counts sampleCounts(std::uint64_t shots, Rng &rng) const;

    /** Squared norm (should stay 1 within numerical error). */
    double norm() const;

    /**
     * Fidelity-style overlap |<this|other>|^2 — used by tests to compare
     * circuits up to global phase.
     */
    double overlap(const Statevector &other) const;

  private:
    int num_qubits_;
    std::vector<Complex> amps_;
};

/**
 * Runs a circuit from |0...0> and samples its measured classical bits.
 *
 * Honors the MEASURE gates: classical bit `cbit` receives the outcome of
 * the measured qubit, so compiled circuits (whose measured physical
 * qubits differ from the logical indices) produce logically-indexed
 * bitstrings.  Qubits without a MEASURE gate contribute 0 bits.
 *
 * @return Histogram over classical bitstrings.
 */
Counts runAndSample(const circuit::Circuit &circuit, std::uint64_t shots,
                    Rng &rng);

} // namespace qaoa::sim

#endif // QAOA_SIM_STATEVECTOR_HPP
