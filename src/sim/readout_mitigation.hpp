/**
 * @file
 * Readout-error mitigation by tensor-product confusion-matrix
 * inversion.
 *
 * Measurement errors are classical bit flips (§II lumps them into the
 * success-probability product; noisySample() applies them per qubit).
 * When the per-qubit flip probabilities are calibrated, the ideal
 * distribution can be estimated by applying the inverse of each qubit's
 * 2x2 confusion matrix to the measured histogram — the standard
 * tensored mitigation used on IBM hardware, listed here under the
 * paper's "future developments" directive (§I contribution (f)).
 */

#ifndef QAOA_SIM_READOUT_MITIGATION_HPP
#define QAOA_SIM_READOUT_MITIGATION_HPP

#include <vector>

#include "hardware/calibration.hpp"
#include "sim/statevector.hpp"

namespace qaoa::sim {

/**
 * Per-qubit symmetric readout model: P(read 1 | was 0) =
 * P(read 0 | was 1) = flip probability of that classical bit.
 */
struct ReadoutModel
{
    /** flip[i] = flip probability of classical bit i; each in [0, 0.5). */
    std::vector<double> flip;

    /** Uniform model over @p bits classical bits. */
    static ReadoutModel uniform(int bits, double flip_probability);

    /**
     * Model taken from device calibration through a measurement map:
     * classical bit c gets the readout error of the physical qubit
     * measured into c (derived from the circuit's MEASURE gates).
     */
    static ReadoutModel fromCircuit(const circuit::Circuit &physical,
                                    const hw::CalibrationData &calib);
};

/**
 * Applies the inverse confusion matrices to a histogram.
 *
 * Works on the dense 2^n probability vector (n = model.flip.size(),
 * capped at 24 bits), clips negative quasi-probabilities to zero and
 * renormalizes.
 *
 * @return Mitigated distribution as basis-index -> probability.
 */
std::map<std::uint64_t, double> mitigateReadout(const Counts &counts,
                                                const ReadoutModel &model);

} // namespace qaoa::sim

#endif // QAOA_SIM_READOUT_MITIGATION_HPP
