/**
 * @file
 * Thermal-relaxation (T1/T2) noise — the decoherence channel of §II.
 *
 * Complements the depolarizing gate-error model (noise.hpp): while gates
 * execute, every involved qubit relaxes with probability
 * 1 - exp(-dt/T1) (amplitude damping towards |0>, realized as a
 * trajectory jump) and dephases with probability (1 - exp(-dt/T2'))/2
 * (Z flip), where dt is the gate duration from the timing model and
 * 1/T2' = 1/T2 - 1/(2 T1) is the pure-dephasing rate.  This makes the
 * "deeper circuit -> more decoherence" mechanism explicit in the ARG
 * experiments.
 */

#ifndef QAOA_SIM_THERMAL_HPP
#define QAOA_SIM_THERMAL_HPP

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "metrics/timing.hpp"
#include "sim/statevector.hpp"

namespace qaoa::sim {

/** Relaxation parameters (nanoseconds), IBM-era defaults. */
struct ThermalParams
{
    double t1_ns = 90000.0; ///< Amplitude-damping time constant.
    double t2_ns = 70000.0; ///< Total dephasing time constant (<= 2 T1).

    metrics::GateDurations durations; ///< Per-gate dt source.

    /** Probability of a relaxation jump during a gate of length dt. */
    double relaxProbability(double dt_ns) const;

    /** Probability of a pure-dephasing Z flip during dt. */
    double dephaseProbability(double dt_ns) const;
};

/**
 * Samples a circuit under trajectory-method thermal relaxation.
 *
 * Each trajectory applies the circuit's unitaries; after every timed
 * gate each involved qubit may (a) jump: the qubit is projected by a
 * Born-rule measurement and reset to |0> when it collapsed to |1>
 * (amplitude damping), or (b) dephase: a Z is applied.  Measurement
 * mapping follows the runAndSample() convention.
 *
 * @param physical     Hardware circuit (any gate set).
 * @param params       T1/T2 and durations.
 * @param shots        Total shots across trajectories.
 * @param rng          Randomness source.
 * @param trajectories Monte-Carlo trajectory count (default 32).
 */
Counts thermalSample(const circuit::Circuit &physical,
                     const ThermalParams &params, std::uint64_t shots,
                     Rng &rng, int trajectories = 32);

} // namespace qaoa::sim

#endif // QAOA_SIM_THERMAL_HPP
