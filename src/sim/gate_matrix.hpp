/**
 * @file
 * Exact unitary matrices for every gate in the IR.
 *
 * Conventions: qubit basis |q1 q0> for two-qubit matrices, i.e. the
 * first operand (q0 of the Gate) is the *low* bit of the 2-bit index.
 * Matrices are row-major std::array<std::complex<double>, N>.
 */

#ifndef QAOA_SIM_GATE_MATRIX_HPP
#define QAOA_SIM_GATE_MATRIX_HPP

#include <array>
#include <complex>

#include "circuit/gate.hpp"

namespace qaoa::sim {

using Complex = std::complex<double>;
using Matrix2 = std::array<Complex, 4>;  ///< 2x2, row-major.
using Matrix4 = std::array<Complex, 16>; ///< 4x4, row-major.

/** 2x2 unitary of a single-qubit gate; throws for multi-qubit types. */
Matrix2 gateMatrix1q(const circuit::Gate &g);

/**
 * 4x4 unitary of a two-qubit gate in the |b a> ordering (gate operand q0
 * = a = low bit, q1 = b = high bit); throws for other arities.
 */
Matrix4 gateMatrix2q(const circuit::Gate &g);

} // namespace qaoa::sim

#endif // QAOA_SIM_GATE_MATRIX_HPP
