/**
 * @file
 * Circuit success probability (§II "Success Probability").
 *
 * The success probability of a circuit is the product of the success
 * probabilities (1 - error) of its individual gates, evaluated against
 * the device calibration.  This is the metric Fig. 10 reports for VIC vs
 * IC.
 *
 * The cost model itself lives in the static analyzer (analysis/esp.hpp,
 * which also attributes the loss per gate class and per qubit); these
 * functions forward to it under the historical names.
 */

#ifndef QAOA_SIM_SUCCESS_HPP
#define QAOA_SIM_SUCCESS_HPP

#include "circuit/circuit.hpp"
#include "hardware/calibration.hpp"

namespace qaoa::sim {

/**
 * Error rate of one physical gate under the calibration.
 *
 * Gate cost model (IBM-style):
 *  - U1 / BARRIER: error-free (virtual Z rotation / scheduling marker);
 *  - other single-qubit gates: the qubit's 1q error rate;
 *  - CNOT: the edge's CNOT error;
 *  - CPHASE / CZ: two CNOTs -> 1 - (1-e)^2;
 *  - SWAP: three CNOTs -> 1 - (1-e)^3;
 *  - MEASURE: the qubit's readout error.
 *
 * The gate must act on physical qubits (two-qubit gates on coupled
 * pairs).
 */
double gateErrorRate(const circuit::Gate &g,
                     const hw::CalibrationData &calib);

/**
 * Product-of-gate-success-rates metric for a physical circuit.
 *
 * @return Value in (0, 1]; higher is better.
 */
double successProbability(const circuit::Circuit &physical,
                          const hw::CalibrationData &calib);

} // namespace qaoa::sim

#endif // QAOA_SIM_SUCCESS_HPP
