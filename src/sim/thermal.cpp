#include "sim/thermal.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace qaoa::sim {

double
ThermalParams::relaxProbability(double dt_ns) const
{
    QAOA_ASSERT(t1_ns > 0.0, "non-positive T1");
    return 1.0 - std::exp(-dt_ns / t1_ns);
}

double
ThermalParams::dephaseProbability(double dt_ns) const
{
    QAOA_ASSERT(t2_ns > 0.0, "non-positive T2");
    // Pure dephasing rate: 1/T2' = 1/T2 - 1/(2 T1); the physical
    // constraint T2 <= 2 T1 keeps it non-negative.
    double rate = 1.0 / t2_ns - 1.0 / (2.0 * t1_ns);
    if (rate <= 0.0)
        return 0.0;
    return 0.5 * (1.0 - std::exp(-dt_ns * rate));
}

Counts
thermalSample(const circuit::Circuit &physical, const ThermalParams &params,
              std::uint64_t shots, Rng &rng, int trajectories)
{
    QAOA_CHECK(trajectories >= 1, "need at least one trajectory");
    QAOA_CHECK(shots >= 1, "need at least one shot");
    QAOA_CHECK(params.t2_ns <= 2.0 * params.t1_ns + 1e-9,
               "unphysical relaxation times (T2 > 2 T1)");

    std::vector<std::pair<int, int>> measures;
    for (const circuit::Gate &g : physical.gates())
        if (g.type == circuit::GateType::MEASURE)
            measures.emplace_back(g.q0, g.cbit);

    auto apply_channel = [&](Statevector &state, int q, double dt) {
        if (dt <= 0.0)
            return;
        // Amplitude damping as a trajectory jump: with probability
        // gamma, Born-measure the qubit and reset a |1> collapse to
        // |0>.  (Pauli-twirled approximation of the exact channel.)
        if (rng.bernoulli(params.relaxProbability(dt))) {
            bool one = rng.bernoulli(state.probabilityOfOne(q));
            state.collapse(q, one);
            if (one)
                state.apply(circuit::Gate::x(q));
        }
        if (rng.bernoulli(params.dephaseProbability(dt)))
            state.apply(circuit::Gate::z(q));
    };

    Counts counts;
    const std::uint64_t traj_count =
        static_cast<std::uint64_t>(trajectories);
    for (std::uint64_t t = 0; t < traj_count; ++t) {
        std::uint64_t traj_shots = shots / traj_count +
                                   (t < shots % traj_count ? 1 : 0);
        if (traj_shots == 0)
            continue;
        Statevector state(physical.numQubits());
        for (const circuit::Gate &g : physical.gates()) {
            state.apply(g);
            if (g.type == circuit::GateType::MEASURE ||
                g.type == circuit::GateType::BARRIER)
                continue;
            double dt = params.durations.of(g);
            apply_channel(state, g.q0, dt);
            if (g.arity() == 2)
                apply_channel(state, g.q1, dt);
        }
        Counts raw = state.sampleCounts(traj_shots, rng);
        for (const auto &[basis, count] : raw) {
            std::uint64_t bits = 0;
            for (const auto &[q, c] : measures)
                if ((basis >> q) & 1ULL)
                    bits |= 1ULL << c;
            counts[bits] += count;
        }
    }
    return counts;
}

} // namespace qaoa::sim
