#include "sim/gate_matrix.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace qaoa::sim {

namespace {

constexpr Complex kI{0.0, 1.0};

Complex
expi(double phi)
{
    return {std::cos(phi), std::sin(phi)};
}

Matrix2
u3Matrix(double theta, double phi, double lambda)
{
    double c = std::cos(theta / 2.0);
    double s = std::sin(theta / 2.0);
    return {c, -expi(lambda) * s, expi(phi) * s, expi(phi + lambda) * c};
}

} // namespace

Matrix2
gateMatrix1q(const circuit::Gate &g)
{
    using circuit::GateType;
    constexpr double pi = std::numbers::pi;
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    switch (g.type) {
      case GateType::H:
        return {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
      case GateType::X:
        return {0.0, 1.0, 1.0, 0.0};
      case GateType::Y:
        return {0.0, -kI, kI, 0.0};
      case GateType::Z:
        return {1.0, 0.0, 0.0, -1.0};
      case GateType::RX: {
        double c = std::cos(g.params[0] / 2.0);
        double s = std::sin(g.params[0] / 2.0);
        return {c, -kI * s, -kI * s, c};
      }
      case GateType::RY: {
        double c = std::cos(g.params[0] / 2.0);
        double s = std::sin(g.params[0] / 2.0);
        return {c, -s, s, c};
      }
      case GateType::RZ:
        return {expi(-g.params[0] / 2.0), 0.0, 0.0, expi(g.params[0] / 2.0)};
      case GateType::U1:
        return {1.0, 0.0, 0.0, expi(g.params[0])};
      case GateType::U2:
        return u3Matrix(pi / 2.0, g.params[0], g.params[1]);
      case GateType::U3:
        return u3Matrix(g.params[0], g.params[1], g.params[2]);
      default:
        QAOA_CHECK(false, "gate " << circuit::gateName(g.type)
                                  << " is not single-qubit unitary");
    }
    return {};
}

Matrix4
gateMatrix2q(const circuit::Gate &g)
{
    using circuit::GateType;
    Matrix4 m{}; // zero-initialized
    auto at = [&m](int row, int col) -> Complex & { return m[row * 4 + col]; };
    switch (g.type) {
      case GateType::CNOT:
        // control = operand q0 (low bit a), target = q1 (high bit b).
        at(0, 0) = 1.0; // |b a> = |00> -> |00>
        at(3, 1) = 1.0; // |01> -> |11>
        at(2, 2) = 1.0; // |10> -> |10>
        at(1, 3) = 1.0; // |11> -> |01>
        return m;
      case GateType::CZ:
        at(0, 0) = 1.0;
        at(1, 1) = 1.0;
        at(2, 2) = 1.0;
        at(3, 3) = -1.0;
        return m;
      case GateType::CPHASE: {
        Complex phase = expi(g.params[0]);
        at(0, 0) = 1.0;
        at(1, 1) = phase;
        at(2, 2) = phase;
        at(3, 3) = 1.0;
        return m;
      }
      case GateType::SWAP:
        at(0, 0) = 1.0;
        at(2, 1) = 1.0;
        at(1, 2) = 1.0;
        at(3, 3) = 1.0;
        return m;
      default:
        QAOA_CHECK(false, "gate " << circuit::gateName(g.type)
                                  << " is not two-qubit unitary");
    }
    return m;
}

} // namespace qaoa::sim
