#include "sim/readout_mitigation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qaoa::sim {

ReadoutModel
ReadoutModel::uniform(int bits, double flip_probability)
{
    QAOA_CHECK(bits >= 1, "need at least one classical bit");
    QAOA_CHECK(flip_probability >= 0.0 && flip_probability < 0.5,
               "flip probability must be in [0, 0.5)");
    ReadoutModel model;
    model.flip.assign(static_cast<std::size_t>(bits), flip_probability);
    return model;
}

ReadoutModel
ReadoutModel::fromCircuit(const circuit::Circuit &physical,
                          const hw::CalibrationData &calib)
{
    int max_cbit = -1;
    for (const circuit::Gate &g : physical.gates())
        if (g.type == circuit::GateType::MEASURE)
            max_cbit = std::max(max_cbit, g.cbit);
    QAOA_CHECK(max_cbit >= 0, "circuit has no measurements");
    ReadoutModel model;
    model.flip.assign(static_cast<std::size_t>(max_cbit + 1), 0.0);
    for (const circuit::Gate &g : physical.gates()) {
        if (g.type != circuit::GateType::MEASURE)
            continue;
        double err = calib.readoutError(g.q0);
        QAOA_CHECK(err < 0.5, "readout error >= 0.5 cannot be inverted");
        model.flip[static_cast<std::size_t>(g.cbit)] = err;
    }
    return model;
}

std::map<std::uint64_t, double>
mitigateReadout(const Counts &counts, const ReadoutModel &model)
{
    const int n = static_cast<int>(model.flip.size());
    QAOA_CHECK(n >= 1 && n <= 24,
               "mitigation supports 1..24 classical bits, got " << n);
    std::uint64_t total = 0;
    for (const auto &[bits, count] : counts) {
        QAOA_CHECK(bits < (1ULL << n),
                   "histogram key outside the " << n << "-bit space");
        total += count;
    }
    QAOA_CHECK(total > 0, "empty histogram");

    // Dense measured distribution.
    std::vector<double> p(1ULL << n, 0.0);
    for (const auto &[bits, count] : counts)
        p[bits] = static_cast<double>(count) / static_cast<double>(total);

    // Apply the per-bit inverse confusion matrix
    //   M^{-1} = 1/(1-2f) [[1-f, -f], [-f, 1-f]].
    for (int b = 0; b < n; ++b) {
        double f = model.flip[static_cast<std::size_t>(b)];
        QAOA_CHECK(f >= 0.0 && f < 0.5,
                   "flip probability of bit " << b << " not invertible");
        if (f == 0.0)
            continue;
        double scale = 1.0 / (1.0 - 2.0 * f);
        double a00 = (1.0 - f) * scale, a01 = -f * scale;
        const std::uint64_t bit = 1ULL << b;
        for (std::uint64_t i = 0; i < p.size(); ++i) {
            if (i & bit)
                continue;
            double p0 = p[i], p1 = p[i | bit];
            p[i] = a00 * p0 + a01 * p1;
            p[i | bit] = a01 * p0 + a00 * p1;
        }
    }

    // Clip quasi-probabilities and renormalize.
    double norm = 0.0;
    for (double &v : p) {
        if (v < 0.0)
            v = 0.0;
        norm += v;
    }
    QAOA_ASSERT(norm > 0.0, "mitigation collapsed the distribution");
    std::map<std::uint64_t, double> out;
    for (std::uint64_t i = 0; i < p.size(); ++i)
        if (p[i] > 0.0)
            out[i] = p[i] / norm;
    return out;
}

} // namespace qaoa::sim
