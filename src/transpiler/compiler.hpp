/**
 * @file
 * Compile pipeline driver: route -> basis translation -> metrics.
 *
 * This is the "Backend Compiler" box of Fig. 2.  Given a logical circuit
 * and an initial layout it produces a hardware-compliant basis-gate
 * circuit and the quality metrics of §V-A (depth, gate count, SWAPs,
 * compile time).
 */

#ifndef QAOA_TRANSPILER_COMPILER_HPP
#define QAOA_TRANSPILER_COMPILER_HPP

#include <string>
#include <vector>

#include "analysis/quality.hpp"
#include "circuit/circuit.hpp"
#include "common/deadline.hpp"
#include "hardware/coupling_map.hpp"
#include "transpiler/layout.hpp"
#include "transpiler/router.hpp"

namespace qaoa::transpiler {

/**
 * Outcome taxonomy of a compile.
 *
 * Argument-contract violations (null calibration for VIC, mismatched
 * angle vectors, gates after measurement) still throw — they are
 * programming errors.  Hardware-state problems (faulty couplings,
 * fragmented devices, routing failures) surface here instead, so one bad
 * calibration snapshot degrades service quality rather than crashing it.
 */
enum class CompileStatus {
    Ok,       ///< Compiled on the first attempt, healthy device.
    Degraded, ///< Compiled, but on a degraded device and/or after
              ///< retry-ladder fallbacks (see CompileResult::diagnostics).
    Failed,   ///< No attempt produced a circuit; see failure_reason.
    TimedOut, ///< The compile deadline expired (run::Deadline); no
              ///< circuit is emitted.
    Cancelled, ///< A run::CancelToken tripped mid-compile.
    ResourceExceeded, ///< A run::ResourceLimits guard tripped on every
                      ///< rung (SWAP breaker, A* cap, allocation cap).
};

/** Human-readable status name ("ok", "degraded", "timed-out", ...). */
std::string statusName(CompileStatus s);

/** Options for one compile run. */
struct CompileOptions
{
    RouterOptions router;          ///< SWAP-insertion tunables.
    bool decompose_to_basis = true; ///< Translate to {U1,U2,U3,CNOT}.

    /**
     * Layer-partitioned routing (the conventional-backend model of §III):
     * the body is rebuilt as ASAP layers separated by barriers, so the
     * router satisfies one layer completely before the next — gate order
     * then matters, which is what IP/IC exploit.  The barriers are
     * scheduling-only and are stripped from the output.
     */
    bool layered_routing = false;

    /**
     * Run the peephole optimizer on the routed circuit (before and after
     * basis translation) — cancels redundant CNOT/SWAP pairs and fuses
     * rotations.  Off by default so reported metrics match the paper's
     * un-optimized backend.
     */
    bool peephole = false;
};

/** Quality metrics of a compiled circuit (§V-A). */
struct CompileReport
{
    int depth = 0;           ///< Critical-path length.
    int gate_count = 0;      ///< Total gates (BARRIERs excluded).
    int cx_count = 0;        ///< Native CNOT count.
    int swap_count = 0;      ///< SWAPs inserted by routing.
    double compile_seconds = 0.0; ///< Wall-clock compile time.
};

/** Output of compileCircuit(). */
struct CompileResult
{
    circuit::Circuit compiled{0}; ///< Hardware-compliant circuit.

    /**
     * The routed circuit before basis translation: high-level gates
     * (CPHASE/SWAP/...) on physical qubits.  Identical to `compiled` when
     * decompose_to_basis is off.  This is what verify/ checks without
     * having to lift basis patterns.
     */
    circuit::Circuit physical{0};

    Layout initial_layout;        ///< Layout before the first gate.
    Layout final_layout;          ///< Layout after the last gate.
    CompileReport report;         ///< Quality metrics.

    CompileStatus status = CompileStatus::Ok; ///< Outcome class.

    /** Fallbacks taken and degradations noticed, in order. */
    std::vector<std::string> diagnostics;

    /**
     * Static quality analysis of `physical` (timing, ESP, QL findings).
     * Filled by the qaoa-level pipeline when
     * QaoaCompileOptions::analyze_quality is on; default-empty otherwise.
     */
    analysis::QualityReport quality;

    /**
     * Watchdog flight record: one trace per pipeline stage (retry-
     * ladder rung) with elapsed time, retry ordinal and outcome.
     * Filled by the qaoa-level pipeline when a run::RunGuard is
     * attached; default-empty otherwise.
     */
    std::vector<run::StageTrace> stages;

    /** Human-readable reason when the compile produced no circuit. */
    std::string failure_reason;

    /** True when a usable circuit was produced (Ok or Degraded);
     *  false for Failed / TimedOut / Cancelled / ResourceExceeded. */
    bool
    ok() const
    {
        return status == CompileStatus::Ok ||
               status == CompileStatus::Degraded;
    }
};

/**
 * Compiles @p logical for @p map starting from @p initial.
 *
 * The measurement mapping convention: MEASURE gates keep their logical
 * classical bit, so after execution classical bit l holds the value of
 * logical qubit l regardless of the SWAPs inserted.
 *
 * Routing failures (unroutable gates on a fragmented device) do not
 * throw: the result carries status == CompileStatus::Failed and a
 * failure_reason.  Input-contract violations (e.g. a gate after a
 * measurement) still throw std::runtime_error.
 */
CompileResult compileCircuit(const circuit::Circuit &logical,
                             const hw::CouplingMap &map,
                             const Layout &initial,
                             const CompileOptions &options = {});

} // namespace qaoa::transpiler

#endif // QAOA_TRANSPILER_COMPILER_HPP
