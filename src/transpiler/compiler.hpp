/**
 * @file
 * Compile pipeline driver: route -> basis translation -> metrics.
 *
 * This is the "Backend Compiler" box of Fig. 2.  Given a logical circuit
 * and an initial layout it produces a hardware-compliant basis-gate
 * circuit and the quality metrics of §V-A (depth, gate count, SWAPs,
 * compile time).
 */

#ifndef QAOA_TRANSPILER_COMPILER_HPP
#define QAOA_TRANSPILER_COMPILER_HPP

#include "circuit/circuit.hpp"
#include "hardware/coupling_map.hpp"
#include "transpiler/layout.hpp"
#include "transpiler/router.hpp"

namespace qaoa::transpiler {

/** Options for one compile run. */
struct CompileOptions
{
    RouterOptions router;          ///< SWAP-insertion tunables.
    bool decompose_to_basis = true; ///< Translate to {U1,U2,U3,CNOT}.

    /**
     * Layer-partitioned routing (the conventional-backend model of §III):
     * the body is rebuilt as ASAP layers separated by barriers, so the
     * router satisfies one layer completely before the next — gate order
     * then matters, which is what IP/IC exploit.  The barriers are
     * scheduling-only and are stripped from the output.
     */
    bool layered_routing = false;

    /**
     * Run the peephole optimizer on the routed circuit (before and after
     * basis translation) — cancels redundant CNOT/SWAP pairs and fuses
     * rotations.  Off by default so reported metrics match the paper's
     * un-optimized backend.
     */
    bool peephole = false;
};

/** Quality metrics of a compiled circuit (§V-A). */
struct CompileReport
{
    int depth = 0;           ///< Critical-path length.
    int gate_count = 0;      ///< Total gates (BARRIERs excluded).
    int cx_count = 0;        ///< Native CNOT count.
    int swap_count = 0;      ///< SWAPs inserted by routing.
    double compile_seconds = 0.0; ///< Wall-clock compile time.
};

/** Output of compileCircuit(). */
struct CompileResult
{
    circuit::Circuit compiled{0}; ///< Hardware-compliant circuit.
    Layout initial_layout;        ///< Layout before the first gate.
    Layout final_layout;          ///< Layout after the last gate.
    CompileReport report;         ///< Quality metrics.
};

/**
 * Compiles @p logical for @p map starting from @p initial.
 *
 * The measurement mapping convention: MEASURE gates keep their logical
 * classical bit, so after execution classical bit l holds the value of
 * logical qubit l regardless of the SWAPs inserted.
 */
CompileResult compileCircuit(const circuit::Circuit &logical,
                             const hw::CouplingMap &map,
                             const Layout &initial,
                             const CompileOptions &options = {});

} // namespace qaoa::transpiler

#endif // QAOA_TRANSPILER_COMPILER_HPP
