/**
 * @file
 * A*-search layered router — the second conventional-backend family the
 * paper builds on (Zulehner, Paler, Wille [47]).
 *
 * The circuit is partitioned into ASAP layers; for each layer an A*
 * search over logical-to-physical mappings finds a short SWAP sequence
 * that makes every two-qubit gate of the layer nearest-neighbor
 * compliant.  Compared to the greedy front-layer router
 * (transpiler/router.hpp) it explores alternatives with backtracking, so
 * it usually needs fewer SWAPs per layer at a higher compile-time cost —
 * the classic quality/speed trade-off between the two backend families
 * of §III.
 */

#ifndef QAOA_TRANSPILER_ASTAR_ROUTER_HPP
#define QAOA_TRANSPILER_ASTAR_ROUTER_HPP

#include "circuit/circuit.hpp"
#include "hardware/coupling_map.hpp"
#include "transpiler/layout.hpp"
#include "transpiler/router.hpp"

namespace qaoa::transpiler {

/** Tunables for the A* layer search. */
struct AStarOptions
{
    /**
     * Node-expansion budget per layer.  When exhausted the router
     * finishes the layer with deterministic shortest-path walks, so
     * routing always terminates.
     */
    int max_expansions = 20000;

    /** Weight on the heuristic term (1.0 = plain A*, > 1 = greedier). */
    double heuristic_weight = 1.0;

    /**
     * Optional resilience guard polled once per node expansion; its
     * max_astar_expansions limit further caps max_expansions.  nullptr
     * (default) searches unguarded.  Non-owning.
     */
    const run::RunGuard *guard = nullptr;
};

/**
 * Routes @p logical with per-layer A* SWAP search.
 *
 * Same contract as routeCircuit(): returns a physical circuit in which
 * every two-qubit gate respects the coupling map, plus the final layout
 * and SWAP count.
 */
RoutedCircuit routeCircuitAStar(const circuit::Circuit &logical,
                                const hw::CouplingMap &map,
                                const Layout &initial,
                                const AStarOptions &opts = {});

} // namespace qaoa::transpiler

#endif // QAOA_TRANSPILER_ASTAR_ROUTER_HPP
