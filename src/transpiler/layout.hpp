/**
 * @file
 * Logical-to-physical qubit mapping.
 *
 * A layout places k logical (program) qubits on n >= k physical qubits.
 * During SWAP insertion the mapping evolves: swapping two physical qubits
 * exchanges whatever logical qubits they hold (either side may be empty).
 */

#ifndef QAOA_TRANSPILER_LAYOUT_HPP
#define QAOA_TRANSPILER_LAYOUT_HPP

#include <string>
#include <vector>

namespace qaoa::transpiler {

/**
 * Bidirectional logical <-> physical qubit map.
 *
 * Invariants (checked): the logical->physical map is injective, and the
 * two directions stay mutually consistent across swaps.
 */
class Layout
{
  public:
    /** Empty layout (no qubits). */
    Layout() = default;

    /**
     * Builds a layout from a logical->physical assignment.
     *
     * @param log_to_phys log_to_phys[l] = physical qubit of logical l;
     *                    entries must be distinct.
     * @param num_physical Total physical qubits on the device.
     */
    Layout(std::vector<int> log_to_phys, int num_physical);

    /** Identity layout: logical i -> physical i. */
    static Layout identity(int num_logical, int num_physical);

    /** Number of logical qubits. */
    int numLogical() const { return static_cast<int>(log_to_phys_.size()); }

    /** Number of physical qubits. */
    int numPhysical() const { return static_cast<int>(phys_to_log_.size()); }

    /** Physical qubit currently holding logical @p l. */
    int physicalOf(int l) const;

    /** Logical qubit currently held by physical @p p, or -1 if empty. */
    int logicalAt(int p) const;

    /** Exchanges the contents of two physical qubits. */
    void swapPhysical(int a, int b);

    /** The raw logical->physical vector. */
    const std::vector<int> &logToPhys() const { return log_to_phys_; }

    /** Debug string "l0->p7 l1->p12 ...". */
    std::string toString() const;

    bool operator==(const Layout &other) const = default;

  private:
    std::vector<int> log_to_phys_;
    std::vector<int> phys_to_log_;
};

} // namespace qaoa::transpiler

#endif // QAOA_TRANSPILER_LAYOUT_HPP
