#include "transpiler/reverse_traversal.hpp"

#include "common/error.hpp"

namespace qaoa::transpiler {

circuit::Circuit
reversedForMapping(const circuit::Circuit &circuit)
{
    circuit::Circuit out(circuit.numQubits());
    const auto &gates = circuit.gates();
    for (auto it = gates.rbegin(); it != gates.rend(); ++it)
        if (it->type != circuit::GateType::MEASURE)
            out.add(*it);
    return out;
}

Layout
reverseTraversalLayout(const circuit::Circuit &logical,
                       const hw::CouplingMap &map,
                       const Layout &seed_layout, int traversals,
                       const RouterOptions &opts)
{
    QAOA_CHECK(traversals >= 1, "need at least one traversal");

    // Strip measurements once; routing only cares about gate structure.
    circuit::Circuit forward(logical.numQubits());
    for (const circuit::Gate &g : logical.gates())
        if (g.type != circuit::GateType::MEASURE)
            forward.add(g);
    circuit::Circuit backward = reversedForMapping(forward);

    Layout layout = seed_layout;
    for (int t = 0; t < traversals; ++t) {
        // Forward pass: final mapping becomes the reverse pass's start.
        RoutedCircuit f = routeCircuit(forward, map, layout, opts);
        // Reverse pass: its final mapping is a good *initial* mapping for
        // the forward circuit (reversibility argument of [57]).
        RoutedCircuit b = routeCircuit(backward, map, f.final_layout,
                                       opts);
        layout = b.final_layout;
    }
    return layout;
}

} // namespace qaoa::transpiler
