/**
 * @file
 * Baseline initial-layout passes: NAIVE (random) and GreedyV.
 *
 * QAIM — the paper's contribution — lives in qaoa/qaim.hpp; these two are
 * the comparison points of §V-C.
 */

#ifndef QAOA_TRANSPILER_LAYOUT_PASSES_HPP
#define QAOA_TRANSPILER_LAYOUT_PASSES_HPP

#include <vector>

#include "common/rng.hpp"
#include "hardware/calibration.hpp"
#include "hardware/coupling_map.hpp"
#include "transpiler/layout.hpp"

namespace qaoa::transpiler {

/**
 * NAIVE layout: @p num_logical distinct physical qubits chosen uniformly
 * at random.
 *
 * @param allowed Optional usable-qubit mask (hw::FaultInjector::usable());
 *        when set, only qubits with a non-zero entry are candidates —
 *        dead or off-component qubits are never picked.
 */
Layout randomLayout(int num_logical, const hw::CouplingMap &map, Rng &rng,
                    const std::vector<char> *allowed = nullptr);

/**
 * GreedyV layout [Murali et al., ASPLOS'19].
 *
 * Logical qubits sorted by operation count (heaviest first) are placed on
 * physical qubits sorted by degree (most connected first).  Ties broken by
 * index for determinism.
 *
 * @param ops_per_qubit ops_per_qubit[l] = number of two-qubit operations
 *        involving logical qubit l in the program.
 * @param allowed Optional usable-qubit mask; see randomLayout().
 */
Layout greedyVLayout(const std::vector<int> &ops_per_qubit,
                     const hw::CouplingMap &map,
                     const std::vector<char> *allowed = nullptr);

/**
 * Variation-aware Qubit Allocation (VQA) [Tannu & Qureshi, ASPLOS'19],
 * the §III variation-aware topology-selection baseline.
 *
 * Grows a connected physical sub-graph of |ops_per_qubit| qubits that
 * maximizes the cumulative reliability (1 - CNOT error) of its internal
 * links, then places logical qubits heaviest-first on the sub-graph
 * qubits ordered by their internal reliability degree.
 *
 * @param allowed Optional usable-qubit mask; see randomLayout().
 */
Layout vqaLayout(const std::vector<int> &ops_per_qubit,
                 const hw::CouplingMap &map,
                 const hw::CalibrationData &calib,
                 const std::vector<char> *allowed = nullptr);

} // namespace qaoa::transpiler

#endif // QAOA_TRANSPILER_LAYOUT_PASSES_HPP
