/**
 * @file
 * Layered SWAP-insertion router — the "backend compiler" of Fig. 2.
 *
 * Implements the conventional-compiler family the paper builds on (§III,
 * SWAP Insertion): the circuit is consumed front-layer by front-layer;
 * gates whose operands are adjacent under the current mapping execute
 * immediately, and when the whole front is blocked a SWAP is chosen
 * greedily to reduce the (optionally lookahead-weighted) sum of operand
 * distances.  The distance matrix is pluggable so VIC can route against
 * reliability-weighted distances (Fig. 6(d)).
 */

#ifndef QAOA_TRANSPILER_ROUTER_HPP
#define QAOA_TRANSPILER_ROUTER_HPP

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/guard.hpp"
#include "graph/shortest_paths.hpp"
#include "hardware/coupling_map.hpp"
#include "transpiler/layout.hpp"

namespace qaoa::transpiler {

/** Tunables for the SWAP-insertion heuristic. */
struct RouterOptions
{
    /** Weight of the lookahead (extended-set) term in the SWAP score. */
    double lookahead_weight = 0.5;

    /** How many upcoming two-qubit gates the lookahead considers. */
    int lookahead_depth = 20;

    /** Seed for random tie-breaking among equal-score SWAPs. */
    std::uint64_t seed = 17;

    /**
     * Distance matrix used for SWAP scoring; nullptr selects the device's
     * hop distances.  VIC passes the 1/R-weighted matrix here.
     */
    const graph::DistanceMatrix *distances = nullptr;

    /**
     * Optional resilience guard polled once per routing step; its
     * max_router_swaps limit is the SWAP circuit breaker.  nullptr
     * (default) routes unguarded.  Non-owning — must outlive the call.
     */
    const run::RunGuard *guard = nullptr;
};

/** Output of routing: a hardware-compliant physical circuit. */
struct RoutedCircuit
{
    circuit::Circuit physical{0}; ///< Gates on physical qubits (has SWAPs).
    Layout final_layout;          ///< Mapping after the last gate.
    int swap_count = 0;           ///< SWAP gates inserted.
};

/**
 * Routes a logical circuit onto the device.
 *
 * @param logical Circuit over logical qubits (any gate set; two-qubit
 *        gates constrain routing, single-qubit gates and measurements pass
 *        through re-indexed).
 * @param map     Target topology.
 * @param initial Initial logical->physical layout (numLogical must cover
 *        the circuit register).
 * @param opts    Heuristic options.
 * @return Physical circuit (over map.numQubits() qubits) in which every
 *         two-qubit gate acts on coupled qubits, plus the final layout.
 */
RoutedCircuit routeCircuit(const circuit::Circuit &logical,
                           const hw::CouplingMap &map, const Layout &initial,
                           const RouterOptions &opts = {});

/**
 * Verifies coupling constraints: every two-qubit gate of @p physical acts
 * on an edge of @p map.  Used by tests and as a post-route sanity check.
 */
bool satisfiesCoupling(const circuit::Circuit &physical,
                       const hw::CouplingMap &map);

} // namespace qaoa::transpiler

#endif // QAOA_TRANSPILER_ROUTER_HPP
