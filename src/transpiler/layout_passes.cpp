#include "transpiler/layout_passes.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace qaoa::transpiler {

namespace {

/**
 * Physical qubits available for placement: all of them, or the non-zero
 * entries of @p allowed (the fault-injection usable mask).
 */
std::vector<int>
placementCandidates(const hw::CouplingMap &map,
                    const std::vector<char> *allowed, int num_logical)
{
    QAOA_CHECK(allowed == nullptr ||
                   static_cast<int>(allowed->size()) == map.numQubits(),
               "usable mask covers " << (allowed ? allowed->size() : 0)
                                     << " qubits, device "
                                     << map.name() << " has "
                                     << map.numQubits());
    std::vector<int> candidates;
    for (int p = 0; p < map.numQubits(); ++p)
        if (!allowed || (*allowed)[static_cast<std::size_t>(p)])
            candidates.push_back(p);
    QAOA_CHECK(num_logical <= static_cast<int>(candidates.size()),
               "program needs " << num_logical << " qubits, device "
                                << map.name() << " has "
                                << candidates.size() << " usable of "
                                << map.numQubits());
    return candidates;
}

} // namespace

Layout
randomLayout(int num_logical, const hw::CouplingMap &map, Rng &rng,
             const std::vector<char> *allowed)
{
    std::vector<int> candidates =
        placementCandidates(map, allowed, num_logical);
    // Sample positions among the candidates, then translate to device
    // indices; without a mask this is the original uniform draw.
    std::vector<int> picks = rng.sampleWithoutReplacement(
        static_cast<int>(candidates.size()), num_logical);
    std::vector<int> log_to_phys(static_cast<std::size_t>(num_logical));
    for (int l = 0; l < num_logical; ++l)
        log_to_phys[static_cast<std::size_t>(l)] =
            candidates[static_cast<std::size_t>(
                picks[static_cast<std::size_t>(l)])];
    return Layout(std::move(log_to_phys), map.numQubits());
}

Layout
greedyVLayout(const std::vector<int> &ops_per_qubit,
              const hw::CouplingMap &map, const std::vector<char> *allowed)
{
    const int k = static_cast<int>(ops_per_qubit.size());

    // Logical qubits, heaviest first.
    std::vector<int> logical(static_cast<std::size_t>(k));
    std::iota(logical.begin(), logical.end(), 0);
    std::stable_sort(logical.begin(), logical.end(), [&](int a, int b) {
        return ops_per_qubit[static_cast<std::size_t>(a)] >
               ops_per_qubit[static_cast<std::size_t>(b)];
    });

    // Usable physical qubits, highest degree first.
    std::vector<int> physical = placementCandidates(map, allowed, k);
    std::stable_sort(physical.begin(), physical.end(), [&](int a, int b) {
        return map.graph().degree(a) > map.graph().degree(b);
    });

    std::vector<int> log_to_phys(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
        log_to_phys[static_cast<std::size_t>(logical[i])] = physical[i];
    return Layout(std::move(log_to_phys), map.numQubits());
}

Layout
vqaLayout(const std::vector<int> &ops_per_qubit,
          const hw::CouplingMap &map, const hw::CalibrationData &calib,
          const std::vector<char> *allowed)
{
    const int k = static_cast<int>(ops_per_qubit.size());
    QAOA_CHECK(k >= 1, "empty program");
    placementCandidates(map, allowed, k); // capacity + mask-shape check

    auto usable = [&](int q) {
        return !allowed || (*allowed)[static_cast<std::size_t>(q)];
    };
    auto reliability = [&](int a, int b) {
        return 1.0 - calib.cnotError(a, b);
    };

    // Seed with the most reliable coupling edge between usable qubits.
    const auto &edges = map.graph().edges();
    QAOA_CHECK(!edges.empty(), "device has no couplings");
    const graph::Edge *best_edge = nullptr;
    for (const graph::Edge &e : edges) {
        if (!usable(e.u) || !usable(e.v))
            continue;
        if (!best_edge || reliability(e.u, e.v) >
                              reliability(best_edge->u, best_edge->v))
            best_edge = &e;
    }
    QAOA_CHECK(best_edge != nullptr || k < 2,
               "no usable coupling on " << map.name());

    std::vector<bool> chosen(static_cast<std::size_t>(map.numQubits()),
                             false);
    std::vector<int> subgraph;
    auto choose = [&](int q) {
        chosen[static_cast<std::size_t>(q)] = true;
        subgraph.push_back(q);
    };
    if (best_edge) {
        choose(best_edge->u);
        if (k >= 2)
            choose(best_edge->v);
    } else {
        // k == 1 on a device whose usable region has no internal
        // coupling: any usable qubit will do.
        for (int q = 0; q < map.numQubits(); ++q)
            if (usable(q)) {
                choose(q);
                break;
            }
    }

    // Grow by the frontier qubit with maximum cumulative reliability of
    // links into the chosen set.
    while (static_cast<int>(subgraph.size()) < k) {
        int best_q = -1;
        double best_score = -1.0;
        for (int q : subgraph) {
            for (int nb : map.neighbors(q)) {
                if (chosen[static_cast<std::size_t>(nb)] || !usable(nb))
                    continue;
                double score = 0.0;
                for (int in : map.neighbors(nb))
                    if (chosen[static_cast<std::size_t>(in)])
                        score += reliability(nb, in);
                if (score > best_score) {
                    best_score = score;
                    best_q = nb;
                }
            }
        }
        QAOA_CHECK(best_q >= 0,
                   "usable region of " << map.name()
                                       << " is not connected: VQA ran "
                                          "out of frontier at "
                                       << subgraph.size() << "/" << k
                                       << " qubits");
        choose(best_q);
    }

    // Internal reliability degree of each chosen qubit.
    auto internal_degree = [&](int q) {
        double total = 0.0;
        for (int nb : map.neighbors(q))
            if (chosen[static_cast<std::size_t>(nb)])
                total += reliability(q, nb);
        return total;
    };
    std::stable_sort(subgraph.begin(), subgraph.end(), [&](int a, int b) {
        return internal_degree(a) > internal_degree(b);
    });

    // Heaviest logical qubit first onto the most-connected subgraph
    // qubits.
    std::vector<int> logical(static_cast<std::size_t>(k));
    std::iota(logical.begin(), logical.end(), 0);
    std::stable_sort(logical.begin(), logical.end(), [&](int a, int b) {
        return ops_per_qubit[static_cast<std::size_t>(a)] >
               ops_per_qubit[static_cast<std::size_t>(b)];
    });

    std::vector<int> log_to_phys(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
        log_to_phys[static_cast<std::size_t>(logical[i])] =
            subgraph[static_cast<std::size_t>(i)];
    return Layout(std::move(log_to_phys), map.numQubits());
}

} // namespace qaoa::transpiler
