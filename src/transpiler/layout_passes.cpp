#include "transpiler/layout_passes.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace qaoa::transpiler {

Layout
randomLayout(int num_logical, const hw::CouplingMap &map, Rng &rng)
{
    QAOA_CHECK(num_logical <= map.numQubits(),
               "program needs " << num_logical << " qubits, device "
                                << map.name() << " has "
                                << map.numQubits());
    return Layout(rng.sampleWithoutReplacement(map.numQubits(), num_logical),
                  map.numQubits());
}

Layout
greedyVLayout(const std::vector<int> &ops_per_qubit,
              const hw::CouplingMap &map)
{
    const int k = static_cast<int>(ops_per_qubit.size());
    QAOA_CHECK(k <= map.numQubits(),
               "program needs " << k << " qubits, device has "
                                << map.numQubits());

    // Logical qubits, heaviest first.
    std::vector<int> logical(static_cast<std::size_t>(k));
    std::iota(logical.begin(), logical.end(), 0);
    std::stable_sort(logical.begin(), logical.end(), [&](int a, int b) {
        return ops_per_qubit[static_cast<std::size_t>(a)] >
               ops_per_qubit[static_cast<std::size_t>(b)];
    });

    // Physical qubits, highest degree first.
    std::vector<int> physical(static_cast<std::size_t>(map.numQubits()));
    std::iota(physical.begin(), physical.end(), 0);
    std::stable_sort(physical.begin(), physical.end(), [&](int a, int b) {
        return map.graph().degree(a) > map.graph().degree(b);
    });

    std::vector<int> log_to_phys(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
        log_to_phys[static_cast<std::size_t>(logical[i])] = physical[i];
    return Layout(std::move(log_to_phys), map.numQubits());
}

Layout
vqaLayout(const std::vector<int> &ops_per_qubit,
          const hw::CouplingMap &map, const hw::CalibrationData &calib)
{
    const int k = static_cast<int>(ops_per_qubit.size());
    QAOA_CHECK(k >= 1 && k <= map.numQubits(),
               "program needs " << k << " qubits, device has "
                                << map.numQubits());

    auto reliability = [&](int a, int b) {
        return 1.0 - calib.cnotError(a, b);
    };

    // Seed with the most reliable coupling edge.
    const auto &edges = map.graph().edges();
    QAOA_CHECK(!edges.empty(), "device has no couplings");
    const graph::Edge *best_edge = &edges.front();
    for (const graph::Edge &e : edges)
        if (reliability(e.u, e.v) > reliability(best_edge->u,
                                                best_edge->v))
            best_edge = &e;

    std::vector<bool> chosen(static_cast<std::size_t>(map.numQubits()),
                             false);
    std::vector<int> subgraph;
    auto choose = [&](int q) {
        chosen[static_cast<std::size_t>(q)] = true;
        subgraph.push_back(q);
    };
    choose(best_edge->u);
    if (k >= 2)
        choose(best_edge->v);

    // Grow by the frontier qubit with maximum cumulative reliability of
    // links into the chosen set.
    while (static_cast<int>(subgraph.size()) < k) {
        int best_q = -1;
        double best_score = -1.0;
        for (int q : subgraph) {
            for (int nb : map.neighbors(q)) {
                if (chosen[static_cast<std::size_t>(nb)])
                    continue;
                double score = 0.0;
                for (int in : map.neighbors(nb))
                    if (chosen[static_cast<std::size_t>(in)])
                        score += reliability(nb, in);
                if (score > best_score) {
                    best_score = score;
                    best_q = nb;
                }
            }
        }
        QAOA_ASSERT(best_q >= 0, "connected device ran out of frontier");
        choose(best_q);
    }

    // Internal reliability degree of each chosen qubit.
    auto internal_degree = [&](int q) {
        double total = 0.0;
        for (int nb : map.neighbors(q))
            if (chosen[static_cast<std::size_t>(nb)])
                total += reliability(q, nb);
        return total;
    };
    std::stable_sort(subgraph.begin(), subgraph.end(), [&](int a, int b) {
        return internal_degree(a) > internal_degree(b);
    });

    // Heaviest logical qubit first onto the most-connected subgraph
    // qubits.
    std::vector<int> logical(static_cast<std::size_t>(k));
    std::iota(logical.begin(), logical.end(), 0);
    std::stable_sort(logical.begin(), logical.end(), [&](int a, int b) {
        return ops_per_qubit[static_cast<std::size_t>(a)] >
               ops_per_qubit[static_cast<std::size_t>(b)];
    });

    std::vector<int> log_to_phys(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i)
        log_to_phys[static_cast<std::size_t>(logical[i])] =
            subgraph[static_cast<std::size_t>(i)];
    return Layout(std::move(log_to_phys), map.numQubits());
}

} // namespace qaoa::transpiler
