/**
 * @file
 * Peephole circuit optimizer.
 *
 * Local rewrite rules applied post-routing to shave redundant gates:
 *  - drop zero-angle rotations (U1(0), RZ(0), RX(0), RY(0), CPHASE(0));
 *  - fuse runs of U1/RZ on the same qubit into one rotation;
 *  - cancel self-inverse pairs with no intervening gate on the shared
 *    qubits: H·H, X·X, Y·Y, Z·Z, CX·CX (same operands), CZ·CZ,
 *    SWAP·SWAP;
 *  - fuse CPHASE·CPHASE on the same pair into one CPHASE with summed
 *    angle (commutativity on the same operands is exact).
 *
 * Rules run to a fixed point.  All rewrites are exact (no global-phase
 * caveats beyond those already inherent to the gate set), so output and
 * input circuits are distribution-identical.
 */

#ifndef QAOA_TRANSPILER_PEEPHOLE_HPP
#define QAOA_TRANSPILER_PEEPHOLE_HPP

#include "circuit/circuit.hpp"

namespace qaoa::transpiler {

/** Statistics of one peephole run. */
struct PeepholeStats
{
    int removed_gates = 0; ///< Gates eliminated (cancel + zero-angle).
    int fused_gates = 0;   ///< Gates merged into a neighbor.
    int passes = 0;        ///< Fixed-point iterations performed.
};

/**
 * Applies the rewrite rules to a fixed point.
 *
 * @param circuit Input circuit (any gate set).
 * @param stats   Optional counters.
 * @return The simplified circuit (same register size).
 */
circuit::Circuit peepholeOptimize(const circuit::Circuit &circuit,
                                  PeepholeStats *stats = nullptr);

} // namespace qaoa::transpiler

#endif // QAOA_TRANSPILER_PEEPHOLE_HPP
