/**
 * @file
 * Crosstalk-aware post-compilation sequentialization (§VI "Crosstalk").
 *
 * Excessive gate parallelization can increase crosstalk errors; Murali
 * et al. [66] observed that only a small subset of couplings is highly
 * crosstalk-prone (5 of 221 on IBM Poughkeepsie) and proposed
 * serializing parallel operations on exactly those couplings.  This pass
 * implements that optimization step on compiled circuits: two-qubit
 * gates scheduled concurrently on a conflicting coupling pair are pushed
 * apart with barriers, leaving all other parallelism intact.
 */

#ifndef QAOA_TRANSPILER_CROSSTALK_HPP
#define QAOA_TRANSPILER_CROSSTALK_HPP

#include <vector>

#include "analysis/lint.hpp"
#include "circuit/circuit.hpp"

namespace qaoa::transpiler {

/** An undirected coupling edge {a, b} on physical qubits. */
using Coupling = analysis::Coupling;

/** A pair of couplings that must not drive two-qubit gates
 *  simultaneously.  Detection lives in the analyzer (QL111 /
 *  analysis::findCrosstalkClashes); this pass is the fix. */
using CrosstalkPair = analysis::CrosstalkPair;

/**
 * Counts concurrently scheduled two-qubit gate pairs that land on a
 * conflicting coupling pair (ASAP schedule).  The metric the pass
 * drives to zero; equals the analyzer's QL111 clash count.
 */
int countCrosstalkViolations(const circuit::Circuit &physical,
                             const std::vector<CrosstalkPair> &pairs);

/**
 * Serializes crosstalk-conflicting gates.
 *
 * Rebuilds the circuit layer by layer (ASAP); whenever a layer holds
 * two-qubit gates on both couplings of a conflicting pair, the later
 * gate is deferred past a barrier.  Semantics are unchanged — only the
 * schedule tightens.
 *
 * @return Circuit with countCrosstalkViolations() == 0 for @p pairs.
 */
circuit::Circuit sequentializeCrosstalk(const circuit::Circuit &physical,
                                        const std::vector<CrosstalkPair>
                                            &pairs);

} // namespace qaoa::transpiler

#endif // QAOA_TRANSPILER_CROSSTALK_HPP
