#include "transpiler/crosstalk.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qaoa::transpiler {

namespace {

Coupling
normalize(int a, int b)
{
    return {std::min(a, b), std::max(a, b)};
}

/** True when couplings @p x and @p y form a conflicting pair. */
bool
conflicts(const std::vector<CrosstalkPair> &pairs, const Coupling &x,
          const Coupling &y)
{
    for (const CrosstalkPair &p : pairs) {
        Coupling a = normalize(p.first.first, p.first.second);
        Coupling b = normalize(p.second.first, p.second.second);
        if ((x == a && y == b) || (x == b && y == a))
            return true;
    }
    return false;
}

} // namespace

int
countCrosstalkViolations(const circuit::Circuit &physical,
                         const std::vector<CrosstalkPair> &pairs)
{
    return static_cast<int>(
        analysis::findCrosstalkClashes(physical, pairs).size());
}

circuit::Circuit
sequentializeCrosstalk(const circuit::Circuit &physical,
                       const std::vector<CrosstalkPair> &pairs)
{
    // Greedy list scheduling with a per-layer conflict constraint: every
    // gate goes to the earliest slot where its qubits are free and its
    // coupling does not conflict with a coupling already in that slot.
    const auto &gates = physical.gates();
    std::vector<std::size_t> ready(
        static_cast<std::size_t>(physical.numQubits()), 0);
    std::vector<std::vector<std::size_t>> layers; // gate indices per slot
    std::vector<std::vector<Coupling>> layer_couplings;

    auto slot_conflicts = [&](std::size_t slot, const Coupling &c) {
        if (slot >= layer_couplings.size())
            return false;
        for (const Coupling &other : layer_couplings[slot])
            if (conflicts(pairs, c, other))
                return true;
        return false;
    };

    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        const circuit::Gate &g = gates[gi];
        if (g.type == circuit::GateType::BARRIER) {
            std::size_t frontier = layers.size();
            std::fill(ready.begin(), ready.end(), frontier);
            continue;
        }
        std::size_t slot = ready[static_cast<std::size_t>(g.q0)];
        if (g.arity() == 2)
            slot = std::max(slot, ready[static_cast<std::size_t>(g.q1)]);
        if (circuit::isTwoQubit(g.type)) {
            Coupling c = normalize(g.q0, g.q1);
            while (slot_conflicts(slot, c))
                ++slot;
        }
        if (slot >= layers.size()) {
            layers.resize(slot + 1);
            layer_couplings.resize(slot + 1);
        }
        layers[slot].push_back(gi);
        if (circuit::isTwoQubit(g.type))
            layer_couplings[slot].push_back(normalize(g.q0, g.q1));
        ready[static_cast<std::size_t>(g.q0)] = slot + 1;
        if (g.arity() == 2)
            ready[static_cast<std::size_t>(g.q1)] = slot + 1;
    }

    // Emit slot by slot with barriers so the conflict-free schedule is
    // what any downstream ASAP pass reconstructs.
    circuit::Circuit out(physical.numQubits());
    for (std::size_t slot = 0; slot < layers.size(); ++slot) {
        if (slot > 0)
            out.add(circuit::Gate::barrier());
        for (std::size_t gi : layers[slot])
            out.add(gates[gi]);
    }
    QAOA_ASSERT(countCrosstalkViolations(out, pairs) == 0,
                "sequentialization left crosstalk violations");
    return out;
}

} // namespace qaoa::transpiler
