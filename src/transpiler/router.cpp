#include "transpiler/router.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qaoa::transpiler {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;

/**
 * Routing engine state.  One instance per routeCircuit() call.
 *
 * Gate readiness is tracked with per-qubit FIFO queues: a gate is ready
 * when it sits at the head of the queue of every qubit it touches (a
 * BARRIER is enqueued on all qubits).
 */
class Engine
{
  public:
    Engine(const Circuit &logical, const hw::CouplingMap &map,
           const Layout &initial, const RouterOptions &opts)
        : logical_(logical), map_(map), layout_(initial), opts_(opts),
          rng_(opts.seed),
          dist_(opts.distances ? *opts.distances : map.distances()),
          out_(map.numQubits()),
          decay_(static_cast<std::size_t>(map.numQubits()), 1.0)
    {
        QAOA_CHECK(initial.numLogical() >= logical.numQubits(),
                   "layout covers " << initial.numLogical()
                                    << " logical qubits, circuit needs "
                                    << logical.numQubits());
        QAOA_CHECK(initial.numPhysical() == map.numQubits(),
                   "layout device size mismatch");
        checkRoutable();
        buildQueues();
    }

    RoutedCircuit
    run()
    {
        std::size_t total = logical_.gates().size();
        int since_progress = 0;
        const int stuck_limit = 3 * map_.numQubits() + 12;
        while (executed_ < total) {
            if (opts_.guard)
                opts_.guard->poll("router step");
            if (drainReady()) {
                since_progress = 0;
                std::fill(decay_.begin(), decay_.end(), 1.0);
                continue;
            }
            // The entire front is blocked two-qubit gates: insert a SWAP.
            std::vector<std::size_t> front = blockedFront();
            QAOA_ASSERT(!front.empty(),
                        "router stalled with no blocked front");
            if (since_progress > stuck_limit) {
                forcedStep(front.front());
                since_progress = 0;
            } else {
                greedySwap(front);
                ++since_progress;
            }
        }
        RoutedCircuit result;
        result.physical = std::move(out_);
        result.final_layout = layout_;
        result.swap_count = swaps_;
        return result;
    }

  private:
    /**
     * Fails fast on unroutable gates.  SWAPs move logical qubits only
     * along coupling edges, so connected components are invariant under
     * routing: a two-qubit gate whose operands start in different
     * fragments of a degraded device can never execute.  Without this
     * check the SWAP loop would livelock.
     */
    void
    checkRoutable() const
    {
        if (map_.connected())
            return;
        const graph::DistanceMatrix &hops = map_.distances();
        for (const Gate &g : logical_.gates()) {
            if (!circuit::isTwoQubit(g.type))
                continue;
            int pa = layout_.physicalOf(g.q0);
            int pb = layout_.physicalOf(g.q1);
            QAOA_CHECK(hops[static_cast<std::size_t>(pa)]
                           [static_cast<std::size_t>(pb)] !=
                           graph::kInfDistance,
                       "unroutable gate: logical qubits "
                           << g.q0 << " (q" << pa << ") and " << g.q1
                           << " (q" << pb
                           << ") sit in disconnected fragments of "
                           << map_.name());
        }
    }

    void
    buildQueues()
    {
        queues_.assign(static_cast<std::size_t>(logical_.numQubits()), {});
        const auto &gates = logical_.gates();
        for (std::size_t gi = 0; gi < gates.size(); ++gi) {
            const Gate &g = gates[gi];
            if (g.type == GateType::BARRIER) {
                for (auto &q : queues_)
                    q.push_back(gi);
            } else {
                queues_[static_cast<std::size_t>(g.q0)].push_back(gi);
                if (g.arity() == 2)
                    queues_[static_cast<std::size_t>(g.q1)].push_back(gi);
            }
        }
    }

    /** Gate indices currently at the head of at least one queue. */
    std::vector<std::size_t>
    headCandidates() const
    {
        std::vector<std::size_t> heads;
        for (const auto &q : queues_)
            if (!q.empty())
                heads.push_back(q.front());
        std::sort(heads.begin(), heads.end());
        heads.erase(std::unique(heads.begin(), heads.end()), heads.end());
        return heads;
    }

    /** True when @p gi heads the queue of every qubit it touches. */
    bool
    isReady(std::size_t gi) const
    {
        const Gate &g = logical_.gates()[gi];
        if (g.type == GateType::BARRIER) {
            // A barrier is enqueued on every qubit, so it is ready exactly
            // when it heads every queue.
            for (const auto &q : queues_)
                if (q.empty() || q.front() != gi)
                    return false;
            return true;
        }
        const auto &q0 = queues_[static_cast<std::size_t>(g.q0)];
        if (q0.empty() || q0.front() != gi)
            return false;
        if (g.arity() == 2) {
            const auto &q1 = queues_[static_cast<std::size_t>(g.q1)];
            if (q1.empty() || q1.front() != gi)
                return false;
        }
        return true;
    }

    /** Pops @p gi from the head of every queue holding it. */
    void
    popGate(std::size_t gi)
    {
        for (auto &q : queues_)
            if (!q.empty() && q.front() == gi)
                q.pop_front();
        ++executed_;
    }

    /** Emits @p g re-indexed through the current layout. */
    void
    emitMapped(const Gate &g)
    {
        Gate m = g;
        if (g.type == GateType::BARRIER) {
            out_.add(m);
            return;
        }
        m.q0 = layout_.physicalOf(g.q0);
        if (g.arity() == 2)
            m.q1 = layout_.physicalOf(g.q1);
        out_.add(m);
    }

    /**
     * Executes every ready gate whose constraints are met; returns true if
     * anything executed.
     */
    bool
    drainReady()
    {
        bool progressed = false;
        bool any = true;
        while (any) {
            any = false;
            for (std::size_t gi : headCandidates()) {
                if (!isReady(gi))
                    continue;
                const Gate &g = logical_.gates()[gi];
                bool executable = true;
                if (circuit::isTwoQubit(g.type))
                    executable = map_.coupled(layout_.physicalOf(g.q0),
                                              layout_.physicalOf(g.q1));
                if (executable) {
                    emitMapped(g);
                    popGate(gi);
                    any = true;
                    progressed = true;
                }
            }
        }
        return progressed;
    }

    /** Ready-but-blocked two-qubit gates (the front layer). */
    std::vector<std::size_t>
    blockedFront() const
    {
        std::vector<std::size_t> front;
        for (std::size_t gi : headCandidates()) {
            if (!isReady(gi))
                continue;
            const Gate &g = logical_.gates()[gi];
            if (circuit::isTwoQubit(g.type) &&
                !map_.coupled(layout_.physicalOf(g.q0),
                              layout_.physicalOf(g.q1)))
                front.push_back(gi);
        }
        return front;
    }

    /** Next unexecuted two-qubit gates beyond the front (lookahead). */
    std::vector<std::size_t>
    extendedSet(const std::vector<std::size_t> &front) const
    {
        std::vector<std::size_t> ext;
        std::set<std::size_t> front_set(front.begin(), front.end());
        std::set<std::size_t> pending;
        for (const auto &q : queues_)
            for (std::size_t gi : q)
                pending.insert(gi);
        for (std::size_t gi : pending) {
            if (front_set.count(gi))
                continue;
            if (circuit::isTwoQubit(logical_.gates()[gi].type)) {
                ext.push_back(gi);
                if (static_cast<int>(ext.size()) >= opts_.lookahead_depth)
                    break;
            }
        }
        return ext;
    }

    double
    pairDistance(std::size_t gi, const std::vector<int> &pos) const
    {
        const Gate &g = logical_.gates()[gi];
        int a = pos[static_cast<std::size_t>(g.q0)];
        int b = pos[static_cast<std::size_t>(g.q1)];
        return dist_[static_cast<std::size_t>(a)]
                    [static_cast<std::size_t>(b)];
    }

    /** Greedy SWAP choice over edges adjacent to the blocked front. */
    void
    greedySwap(const std::vector<std::size_t> &front)
    {
        // Candidate swaps: coupling edges touching an operand of a front
        // gate.
        std::set<std::pair<int, int>> candidates;
        for (std::size_t gi : front) {
            const Gate &g = logical_.gates()[gi];
            for (int lq : {g.q0, g.q1}) {
                int p = layout_.physicalOf(lq);
                for (int nb : map_.neighbors(p))
                    candidates.insert({std::min(p, nb), std::max(p, nb)});
            }
        }
        QAOA_ASSERT(!candidates.empty(), "no SWAP candidates");

        std::vector<std::size_t> ext = extendedSet(front);

        // Current positions of all logical qubits (copy we can mutate per
        // candidate).
        std::vector<int> pos = layout_.logToPhys();

        double best_score = graph::kInfDistance;
        std::vector<std::pair<int, int>> best;
        for (auto [a, b] : candidates) {
            // Tentatively apply: any logical qubit at a or b moves.
            int la = layout_.logicalAt(a), lb = layout_.logicalAt(b);
            if (la >= 0)
                pos[static_cast<std::size_t>(la)] = b;
            if (lb >= 0)
                pos[static_cast<std::size_t>(lb)] = a;

            double h_front = 0.0;
            for (std::size_t gi : front)
                h_front += pairDistance(gi, pos);
            double h_ext = 0.0;
            for (std::size_t gi : ext)
                h_ext += pairDistance(gi, pos);
            if (!ext.empty())
                h_ext /= static_cast<double>(ext.size());
            double score = (h_front + opts_.lookahead_weight * h_ext) *
                           std::max(decay_[static_cast<std::size_t>(a)],
                                    decay_[static_cast<std::size_t>(b)]);

            if (la >= 0)
                pos[static_cast<std::size_t>(la)] = a;
            if (lb >= 0)
                pos[static_cast<std::size_t>(lb)] = b;

            if (score < best_score - 1e-12) {
                best_score = score;
                best = {{a, b}};
            } else if (score <= best_score + 1e-12) {
                best.push_back({a, b});
            }
        }
        auto [a, b] = best[rng_.index(best.size())];
        applySwap(a, b);
    }

    /**
     * Anti-livelock fallback: walk the first blocked gate's control one
     * hop along a shortest path towards its target.  Strictly decreases
     * hop distance, so repeated application always unblocks the gate.
     */
    void
    forcedStep(std::size_t gi)
    {
        const Gate &g = logical_.gates()[gi];
        int pc = layout_.physicalOf(g.q0);
        int pt = layout_.physicalOf(g.q1);
        // A blocked gate has hop distance >= 2, so the next hop is a
        // strict intermediate node; swapping onto it reduces the distance
        // by exactly one.
        int hop = map_.nextHopTowards(pc, pt);
        QAOA_ASSERT(hop >= 0 && hop != pt, "forced step on adjacent gate");
        applySwap(pc, hop);
    }

    void
    applySwap(int a, int b)
    {
        // SWAP circuit breaker: a run whose SWAP count blows past the
        // guard limit is aborted instead of grinding on — dense
        // commuting layers can make routing cost explode (see the IP
        // formulation of arXiv:2507.12199).
        if (opts_.guard &&
            swaps_ >= opts_.guard->limits().max_router_swaps)
            throw run::ResourceExceededError(
                "router SWAP circuit breaker tripped after " +
                std::to_string(swaps_) + " SWAPs (limit " +
                std::to_string(opts_.guard->limits().max_router_swaps) +
                ")");
        out_.add(Gate::swap(a, b));
        layout_.swapPhysical(a, b);
        ++swaps_;
        decay_[static_cast<std::size_t>(a)] += 0.25;
        decay_[static_cast<std::size_t>(b)] += 0.25;
    }

    const Circuit &logical_;
    const hw::CouplingMap &map_;
    Layout layout_;
    RouterOptions opts_;
    Rng rng_;
    const graph::DistanceMatrix &dist_;
    Circuit out_;
    std::vector<std::deque<std::size_t>> queues_;
    std::vector<double> decay_;
    std::size_t executed_ = 0;
    int swaps_ = 0;
};

} // namespace

RoutedCircuit
routeCircuit(const circuit::Circuit &logical, const hw::CouplingMap &map,
             const Layout &initial, const RouterOptions &opts)
{
    Engine engine(logical, map, initial, opts);
    RoutedCircuit routed = engine.run();
    QAOA_ASSERT(satisfiesCoupling(routed.physical, map),
                "router emitted a non-compliant circuit");
    return routed;
}

bool
satisfiesCoupling(const circuit::Circuit &physical,
                  const hw::CouplingMap &map)
{
    for (const circuit::Gate &g : physical.gates())
        if (circuit::isTwoQubit(g.type) && !map.coupled(g.q0, g.q1))
            return false;
    return true;
}

} // namespace qaoa::transpiler
