#include "transpiler/astar_router.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "circuit/layers.hpp"
#include "common/error.hpp"

namespace qaoa::transpiler {

namespace {

using circuit::Circuit;
using circuit::Gate;

/** Hashable snapshot of a logical->physical assignment. */
std::size_t
hashMapping(const std::vector<int> &log_to_phys)
{
    std::size_t h = 1469598103934665603ULL;
    for (int p : log_to_phys) {
        h ^= static_cast<std::size_t>(p) + 0x9e3779b97f4a7c15ULL;
        h *= 1099511628211ULL;
    }
    return h;
}

/** One A* search node: a mapping plus the SWAPs that produced it. */
struct Node
{
    std::vector<int> log_to_phys;
    std::vector<std::pair<int, int>> swaps;
    double g = 0.0; ///< SWAPs applied.
    double f = 0.0; ///< g + weighted heuristic.
};

struct NodeCompare
{
    bool operator()(const Node &a, const Node &b) const
    {
        return a.f > b.f; // min-heap on f
    }
};

/** Sum over layer gates of (hop distance - 1); 0 iff layer satisfied. */
double
layerHeuristic(const std::vector<int> &log_to_phys,
               const std::vector<const Gate *> &layer_2q,
               const hw::CouplingMap &map)
{
    double h = 0.0;
    for (const Gate *g : layer_2q) {
        int d = map.distance(log_to_phys[static_cast<std::size_t>(g->q0)],
                             log_to_phys[static_cast<std::size_t>(g->q1)]);
        h += static_cast<double>(d - 1);
    }
    return h;
}

bool
layerSatisfied(const std::vector<int> &log_to_phys,
               const std::vector<const Gate *> &layer_2q,
               const hw::CouplingMap &map)
{
    for (const Gate *g : layer_2q)
        if (!map.coupled(log_to_phys[static_cast<std::size_t>(g->q0)],
                         log_to_phys[static_cast<std::size_t>(g->q1)]))
            return false;
    return true;
}

/**
 * A* over mappings for one layer.  Returns true and fills @p swaps_out
 * with a SWAP sequence satisfying every layer gate simultaneously;
 * returns false when the expansion budget runs out (caller falls back
 * to gate-at-a-time walking).
 */
bool
searchLayer(const Layout &layout,
            const std::vector<const Gate *> &layer_2q,
            const hw::CouplingMap &map, const AStarOptions &opts,
            std::vector<std::pair<int, int>> *swaps_out)
{
    Node start;
    start.log_to_phys = layout.logToPhys();
    start.g = 0.0;
    start.f = opts.heuristic_weight *
              layerHeuristic(start.log_to_phys, layer_2q, map);
    if (layerSatisfied(start.log_to_phys, layer_2q, map)) {
        swaps_out->clear();
        return true;
    }

    std::priority_queue<Node, std::vector<Node>, NodeCompare> open;
    std::unordered_map<std::size_t, double> best_g;
    open.push(start);
    best_g[hashMapping(start.log_to_phys)] = 0.0;

    // Reverse index: physical qubit -> logical qubit (rebuilt per node
    // lazily from log_to_phys; layers are small so this is cheap).
    auto logical_at = [&](const std::vector<int> &l2p, int phys) {
        for (std::size_t l = 0; l < l2p.size(); ++l)
            if (l2p[l] == phys)
                return static_cast<int>(l);
        return -1;
    };

    // The guard's node-expansion cap tightens the configured budget;
    // exhausting it is not an error (the caller's shortest-path
    // fallback still routes the layer), it just bounds search work.
    int budget = opts.max_expansions;
    if (opts.guard)
        budget = std::min(budget,
                          opts.guard->limits().max_astar_expansions);

    int expansions = 0;
    while (!open.empty() && expansions < budget) {
        if (opts.guard)
            opts.guard->poll("A* layer search");
        Node node = open.top();
        open.pop();
        ++expansions;
        if (layerSatisfied(node.log_to_phys, layer_2q, map)) {
            *swaps_out = std::move(node.swaps);
            return true;
        }

        // Candidate swaps: coupling edges touching an operand of an
        // unsatisfied gate.
        std::set<std::pair<int, int>> candidates;
        for (const Gate *g : layer_2q) {
            int pa = node.log_to_phys[static_cast<std::size_t>(g->q0)];
            int pb = node.log_to_phys[static_cast<std::size_t>(g->q1)];
            if (map.coupled(pa, pb))
                continue;
            for (int p : {pa, pb})
                for (int nb : map.neighbors(p))
                    candidates.insert({std::min(p, nb), std::max(p, nb)});
        }
        for (auto [a, b] : candidates) {
            Node next = node;
            int la = logical_at(next.log_to_phys, a);
            int lb = logical_at(next.log_to_phys, b);
            if (la >= 0)
                next.log_to_phys[static_cast<std::size_t>(la)] = b;
            if (lb >= 0)
                next.log_to_phys[static_cast<std::size_t>(lb)] = a;
            next.swaps.emplace_back(a, b);
            next.g = node.g + 1.0;
            std::size_t key = hashMapping(next.log_to_phys);
            auto it = best_g.find(key);
            if (it != best_g.end() && it->second <= next.g)
                continue;
            best_g[key] = next.g;
            next.f = next.g +
                     opts.heuristic_weight *
                         layerHeuristic(next.log_to_phys, layer_2q, map);
            open.push(std::move(next));
        }
    }

    return false; // budget exhausted — caller handles the fallback
}

} // namespace

RoutedCircuit
routeCircuitAStar(const circuit::Circuit &logical,
                  const hw::CouplingMap &map, const Layout &initial,
                  const AStarOptions &opts)
{
    QAOA_CHECK(initial.numLogical() >= logical.numQubits(),
               "layout covers " << initial.numLogical()
                                << " logical qubits, circuit needs "
                                << logical.numQubits());
    QAOA_CHECK(initial.numPhysical() == map.numQubits(),
               "layout device size mismatch");
    QAOA_CHECK(opts.max_expansions >= 1, "non-positive expansion budget");

    // Components are invariant under SWAPs, so reachability can be
    // checked once upfront — a cross-fragment gate on a degraded device
    // would otherwise exhaust the budget and then livelock the
    // shortest-path fallback.
    if (!map.connected()) {
        const graph::DistanceMatrix &hops = map.distances();
        for (const Gate &g : logical.gates()) {
            if (!circuit::isTwoQubit(g.type))
                continue;
            int pa = initial.physicalOf(g.q0);
            int pb = initial.physicalOf(g.q1);
            QAOA_CHECK(hops[static_cast<std::size_t>(pa)]
                           [static_cast<std::size_t>(pb)] !=
                           graph::kInfDistance,
                       "unroutable gate: logical qubits "
                           << g.q0 << " (q" << pa << ") and " << g.q1
                           << " (q" << pb
                           << ") sit in disconnected fragments of "
                           << map.name());
        }
    }

    RoutedCircuit result;
    result.physical = Circuit(map.numQubits());
    result.final_layout = initial;

    auto emit_swap = [&](int a, int b) {
        result.physical.add(Gate::swap(a, b));
        result.final_layout.swapPhysical(a, b);
        ++result.swap_count;
    };
    auto emit_mapped = [&](const Gate &g) {
        Gate m = g;
        m.q0 = result.final_layout.physicalOf(g.q0);
        if (g.arity() == 2)
            m.q1 = result.final_layout.physicalOf(g.q1);
        result.physical.add(m);
    };

    for (const auto &layer : circuit::asapLayers(logical)) {
        // Single-qubit gates and measurements are unconstrained: emit
        // them at the current mapping before any SWAP of this layer.
        std::vector<const Gate *> layer_2q;
        for (std::size_t gi : layer) {
            const Gate &g = logical.gates()[gi];
            if (circuit::isTwoQubit(g.type))
                layer_2q.push_back(&g);
            else
                emit_mapped(g);
        }
        if (layer_2q.empty())
            continue;

        std::vector<std::pair<int, int>> swaps;
        if (searchLayer(result.final_layout, layer_2q, map, opts,
                        &swaps)) {
            for (auto [a, b] : swaps)
                emit_swap(a, b);
            for (const Gate *g : layer_2q)
                emit_mapped(*g);
        } else {
            // Budget exhausted: satisfy and emit one gate at a time by
            // walking its first operand along a shortest path — each
            // SWAP strictly decreases that gate's distance, so this
            // always terminates.
            for (const Gate *g : layer_2q) {
                while (true) {
                    if (opts.guard)
                        opts.guard->poll("A* shortest-path fallback");
                    int pa = result.final_layout.physicalOf(g->q0);
                    int pb = result.final_layout.physicalOf(g->q1);
                    if (map.coupled(pa, pb))
                        break;
                    emit_swap(pa, map.nextHopTowards(pa, pb));
                }
                emit_mapped(*g);
            }
        }
    }
    QAOA_ASSERT(satisfiesCoupling(result.physical, map),
                "A* router emitted a non-compliant circuit");
    return result;
}

} // namespace qaoa::transpiler
