#include "transpiler/compiler.hpp"

#include <vector>

#include "circuit/decompose.hpp"
#include "circuit/layers.hpp"
#include "common/error.hpp"
#include "common/guard.hpp"
#include "common/stopwatch.hpp"
#include "transpiler/peephole.hpp"
#include "verify/verifier.hpp"

// The pipeline self-check below runs in debug builds; the sanitize CI leg
// keeps it alive under RelWithDebInfo (which defines NDEBUG) by defining
// QAOA_VERIFY_PIPELINE explicitly.
#if !defined(NDEBUG) || defined(QAOA_VERIFY_PIPELINE)
#define QAOA_PIPELINE_SELF_CHECK 1
#else
#define QAOA_PIPELINE_SELF_CHECK 0
#endif

namespace qaoa::transpiler {

std::string
statusName(CompileStatus s)
{
    switch (s) {
      case CompileStatus::Ok: return "ok";
      case CompileStatus::Degraded: return "degraded";
      case CompileStatus::Failed: return "failed";
      case CompileStatus::TimedOut: return "timed-out";
      case CompileStatus::Cancelled: return "cancelled";
      case CompileStatus::ResourceExceeded: return "resource-exceeded";
    }
    QAOA_ASSERT(false, "unknown compile status");
    return {};
}

CompileResult
compileCircuit(const circuit::Circuit &logical, const hw::CouplingMap &map,
               const Layout &initial, const CompileOptions &options)
{
    Stopwatch clock;

    // Split trailing measurements from the unitary body.  Measurements are
    // re-attached after routing, mapped through the final layout, so the
    // classical bit of logical qubit l always receives l's value.
    circuit::Circuit body(logical.numQubits());
    std::vector<circuit::Gate> measures;
    std::vector<bool> measured(static_cast<std::size_t>(logical.numQubits()),
                               false);
    for (const circuit::Gate &g : logical.gates()) {
        if (g.type == circuit::GateType::MEASURE) {
            measured[static_cast<std::size_t>(g.q0)] = true;
            measures.push_back(g);
            continue;
        }
        if (g.type != circuit::GateType::BARRIER) {
            QAOA_CHECK(!measured[static_cast<std::size_t>(g.q0)],
                       "gate after measurement on q" << g.q0);
            if (g.arity() == 2)
                QAOA_CHECK(!measured[static_cast<std::size_t>(g.q1)],
                           "gate after measurement on q" << g.q1);
        }
        body.add(g);
    }

    if (options.layered_routing)
        body = circuit::withLayerBarriers(body);

    // Routing failures are hardware-state problems (fragmented or
    // degraded devices), not caller bugs — report them structurally.
    // Resilience interrupts (cancel / deadline / resource guard) keep
    // their own status class so the caller can distinguish "this input
    // cannot compile" from "this run was stopped"; none of the four
    // emits a partial circuit.
    auto structured_failure = [&](CompileStatus status,
                                  const char *what) {
        CompileResult failed;
        failed.compiled = circuit::Circuit(map.numQubits());
        failed.initial_layout = initial;
        failed.final_layout = initial;
        failed.status = status;
        failed.failure_reason = what;
        failed.report.compile_seconds = clock.seconds();
        return failed;
    };
    RoutedCircuit routed;
    try {
        routed = routeCircuit(body, map, initial, options.router);
    } catch (const run::CancelledError &e) {
        return structured_failure(CompileStatus::Cancelled, e.what());
    } catch (const run::TimedOutError &e) {
        return structured_failure(CompileStatus::TimedOut, e.what());
    } catch (const run::ResourceExceededError &e) {
        return structured_failure(CompileStatus::ResourceExceeded,
                                  e.what());
    } catch (const std::exception &e) {
        return structured_failure(CompileStatus::Failed, e.what());
    }

    if (options.layered_routing) {
        // The barriers only constrained routing; the emitted circuit is a
        // flat DAG again (matching how qiskit-style backends report
        // depth).
        circuit::Circuit flat(routed.physical.numQubits());
        for (const circuit::Gate &g : routed.physical.gates())
            if (g.type != circuit::GateType::BARRIER)
                flat.add(g);
        routed.physical = std::move(flat);
    }

    for (const circuit::Gate &m : measures)
        routed.physical.add(circuit::Gate::measure(
            routed.final_layout.physicalOf(m.q0), m.cbit));

#if QAOA_PIPELINE_SELF_CHECK
    // Translation validation of the router itself: the routed circuit,
    // replayed back to logical indices, must carry exactly the source
    // gate multiset on enabled couplings, and the SWAP replay must land
    // on the final layout the router reports.  Runs before peephole —
    // the optimizer legally deletes gates.
    // Source-level SWAPs are indistinguishable from routing SWAPs in the
    // replay, so the check only applies to SWAP-free sources (every
    // in-repo caller).
    if (logical.countType(circuit::GateType::SWAP) == 0) {
        verify::VerifyReport rv = verify::verifyRouted(
            logical, routed.physical, map, initial.logToPhys(),
            routed.final_layout.logToPhys());
        QAOA_ASSERT(rv.clean(), "router output failed verification: "
                                    << rv.summary());
    }
#endif

    if (options.peephole)
        routed.physical = peepholeOptimize(routed.physical);

    CompileResult result;
    result.physical = routed.physical;
    result.compiled = options.decompose_to_basis
                          ? circuit::decomposeToBasis(routed.physical)
                          : std::move(routed.physical);
    if (options.peephole)
        result.compiled = peepholeOptimize(result.compiled);
    result.initial_layout = initial;
    result.final_layout = routed.final_layout;
    if (!map.connected()) {
        result.status = CompileStatus::Degraded;
        result.diagnostics.push_back(
            "compiled on a fragmented device (" + map.name() + ")");
    }
    result.report.depth = result.compiled.depth();
    result.report.gate_count = result.compiled.gateCount();
    result.report.cx_count =
        result.compiled.countType(circuit::GateType::CNOT);
    result.report.swap_count = routed.swap_count;
    result.report.compile_seconds = clock.seconds();
    return result;
}

} // namespace qaoa::transpiler
