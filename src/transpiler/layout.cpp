#include "transpiler/layout.hpp"

#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace qaoa::transpiler {

Layout::Layout(std::vector<int> log_to_phys, int num_physical)
    : log_to_phys_(std::move(log_to_phys))
{
    QAOA_CHECK(num_physical >= static_cast<int>(log_to_phys_.size()),
               "device has " << num_physical << " qubits but layout maps "
                             << log_to_phys_.size());
    phys_to_log_.assign(static_cast<std::size_t>(num_physical), -1);
    for (std::size_t l = 0; l < log_to_phys_.size(); ++l) {
        int p = log_to_phys_[l];
        QAOA_CHECK(p >= 0 && p < num_physical,
                   "physical qubit " << p << " out of range");
        QAOA_CHECK(phys_to_log_[static_cast<std::size_t>(p)] == -1,
                   "physical qubit " << p << " assigned twice");
        phys_to_log_[static_cast<std::size_t>(p)] = static_cast<int>(l);
    }
}

Layout
Layout::identity(int num_logical, int num_physical)
{
    std::vector<int> v(static_cast<std::size_t>(num_logical));
    std::iota(v.begin(), v.end(), 0);
    return Layout(std::move(v), num_physical);
}

int
Layout::physicalOf(int l) const
{
    QAOA_CHECK(l >= 0 && l < numLogical(),
               "logical qubit " << l << " out of range");
    return log_to_phys_[static_cast<std::size_t>(l)];
}

int
Layout::logicalAt(int p) const
{
    QAOA_CHECK(p >= 0 && p < numPhysical(),
               "physical qubit " << p << " out of range");
    return phys_to_log_[static_cast<std::size_t>(p)];
}

void
Layout::swapPhysical(int a, int b)
{
    QAOA_CHECK(a >= 0 && a < numPhysical() && b >= 0 && b < numPhysical(),
               "swap operand out of range");
    QAOA_CHECK(a != b, "swap of a physical qubit with itself");
    int la = phys_to_log_[static_cast<std::size_t>(a)];
    int lb = phys_to_log_[static_cast<std::size_t>(b)];
    phys_to_log_[static_cast<std::size_t>(a)] = lb;
    phys_to_log_[static_cast<std::size_t>(b)] = la;
    if (la >= 0)
        log_to_phys_[static_cast<std::size_t>(la)] = b;
    if (lb >= 0)
        log_to_phys_[static_cast<std::size_t>(lb)] = a;
}

std::string
Layout::toString() const
{
    std::ostringstream os;
    for (std::size_t l = 0; l < log_to_phys_.size(); ++l)
        os << (l ? " " : "") << "l" << l << "->p" << log_to_phys_[l];
    return os.str();
}

} // namespace qaoa::transpiler
