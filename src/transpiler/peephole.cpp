#include "transpiler/peephole.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"

namespace qaoa::transpiler {

namespace {

using circuit::Gate;
using circuit::GateType;

constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kAngleEps = 1e-12;

/** Angle folded into (-pi, pi]; identity rotations land on ~0. */
double
foldAngle(double a)
{
    a = std::fmod(a, kTwoPi);
    if (a > std::numbers::pi)
        a -= kTwoPi;
    if (a <= -std::numbers::pi)
        a += kTwoPi;
    return a;
}

/** True for parametric gates whose angle reduces to identity. */
bool
isZeroRotation(const Gate &g)
{
    switch (g.type) {
      case GateType::U1:
      case GateType::RZ:
      case GateType::RX:
      case GateType::RY:
      case GateType::CPHASE:
        return std::abs(foldAngle(g.params[0])) < kAngleEps;
      default:
        return false;
    }
}

/** True for the self-inverse gates the cancel rule handles. */
bool
isSelfInverse(GateType t)
{
    switch (t) {
      case GateType::H:
      case GateType::X:
      case GateType::Y:
      case GateType::Z:
      case GateType::CNOT:
      case GateType::CZ:
      case GateType::SWAP:
        return true;
      default:
        return false;
    }
}

/** True when two two-qubit gates act on the same operand pair in a way
 *  that makes them cancel/fuse (order-sensitive only for CNOT). */
bool
sameOperands(const Gate &a, const Gate &b)
{
    if (a.type == GateType::CNOT)
        return a.q0 == b.q0 && a.q1 == b.q1;
    return (a.q0 == b.q0 && a.q1 == b.q1) ||
           (a.q0 == b.q1 && a.q1 == b.q0);
}

/** Whether g and h form a U1/RZ fusion pair. */
bool
isPhaseGate(GateType t)
{
    return t == GateType::U1 || t == GateType::RZ;
}

} // namespace

circuit::Circuit
peepholeOptimize(const circuit::Circuit &circuit, PeepholeStats *stats)
{
    std::vector<Gate> gates = circuit.gates();
    std::vector<bool> alive(gates.size(), true);
    PeepholeStats local;

    // Next alive gate touching qubit q after index i (barriers count as
    // touching everything); returns gates.size() when none.
    auto next_on = [&](std::size_t i, int q) {
        for (std::size_t j = i + 1; j < gates.size(); ++j) {
            if (!alive[j])
                continue;
            if (gates[j].type == GateType::BARRIER ||
                gates[j].actsOn(q))
                return j;
        }
        return gates.size();
    };

    bool changed = true;
    while (changed && local.passes < 50) {
        changed = false;
        ++local.passes;

        // Rule 1: zero-angle rotations vanish.
        for (std::size_t i = 0; i < gates.size(); ++i) {
            if (alive[i] && isZeroRotation(gates[i])) {
                alive[i] = false;
                ++local.removed_gates;
                changed = true;
            }
        }

        // Rules 2-4: pairwise cancel/fuse with the next gate on the
        // same operands.
        for (std::size_t i = 0; i < gates.size(); ++i) {
            if (!alive[i])
                continue;
            const Gate &g = gates[i];
            if (g.type == GateType::BARRIER ||
                g.type == GateType::MEASURE)
                continue;

            std::size_t j = next_on(i, g.q0);
            if (g.arity() == 2 && j != next_on(i, g.q1))
                continue; // something intervenes on the other operand
            if (j >= gates.size())
                continue;
            const Gate &h = gates[j];

            // Self-inverse pair cancellation.
            if (g.type == h.type && isSelfInverse(g.type)) {
                bool match = g.arity() == 1 ? g.q0 == h.q0
                                            : sameOperands(g, h);
                if (match) {
                    alive[i] = alive[j] = false;
                    local.removed_gates += 2;
                    changed = true;
                    continue;
                }
            }
            // Phase fusion on one qubit.
            if (isPhaseGate(g.type) && isPhaseGate(h.type) &&
                g.q0 == h.q0) {
                gates[j] = Gate::u1(g.q0, foldAngle(g.params[0] +
                                                    h.params[0]));
                alive[i] = false;
                ++local.fused_gates;
                changed = true;
                continue;
            }
            // CPHASE fusion on one pair (exact commutation).
            if (g.type == GateType::CPHASE &&
                h.type == GateType::CPHASE && sameOperands(g, h)) {
                gates[j] = Gate::cphase(h.q0, h.q1,
                                        foldAngle(g.params[0] +
                                                  h.params[0]));
                alive[i] = false;
                ++local.fused_gates;
                changed = true;
                continue;
            }
        }
    }

    circuit::Circuit out(circuit.numQubits());
    for (std::size_t i = 0; i < gates.size(); ++i)
        if (alive[i])
            out.add(gates[i]);
    if (stats)
        *stats = local;
    return out;
}

} // namespace qaoa::transpiler
