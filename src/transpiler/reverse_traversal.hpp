/**
 * @file
 * Reverse-traversal initial mapping (Li et al. [57], discussed in §III).
 *
 * Exploits circuit reversibility: starting from some initial layout,
 * alternately compile the circuit and its reverse, feeding each pass's
 * final mapping in as the next pass's initial mapping.  A few (the paper
 * cites 3) traversals substantially improve the initial placement at the
 * cost of repeated compilations — the compile-time overhead QAIM is
 * designed to avoid.  Implemented here as the comparison baseline.
 */

#ifndef QAOA_TRANSPILER_REVERSE_TRAVERSAL_HPP
#define QAOA_TRANSPILER_REVERSE_TRAVERSAL_HPP

#include "circuit/circuit.hpp"
#include "hardware/coupling_map.hpp"
#include "transpiler/layout.hpp"
#include "transpiler/router.hpp"

namespace qaoa::transpiler {

/** Gate-order reversal (sufficient for mapping purposes; parameters are
 *  not inverted because routing only depends on operand structure). */
circuit::Circuit reversedForMapping(const circuit::Circuit &circuit);

/**
 * Runs @p traversals forward/backward routing passes and returns the
 * refined initial layout.
 *
 * @param logical    Circuit to map (measurements ignored).
 * @param map        Target device.
 * @param seed_layout Starting layout (e.g. random).
 * @param traversals Number of traversal pairs (paper default 3).
 * @param opts       Router options used for every pass.
 */
Layout reverseTraversalLayout(const circuit::Circuit &logical,
                              const hw::CouplingMap &map,
                              const Layout &seed_layout, int traversals = 3,
                              const RouterOptions &opts = {});

} // namespace qaoa::transpiler

#endif // QAOA_TRANSPILER_REVERSE_TRAVERSAL_HPP
