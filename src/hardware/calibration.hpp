/**
 * @file
 * Device calibration data: per-edge CNOT error rates, per-qubit 1q and
 * readout error rates.
 *
 * VIC (§IV-D) consumes this through weightedDistances(): each coupling
 * edge gets weight 1/R where R = (1 - CNOT error)^2 is the CPHASE success
 * rate (two consecutive CNOTs; the RZ is virtual and error-free on IBM
 * hardware).  The §V-F summary experiment draws synthetic CNOT error rates
 * from N(mu = 1.0e-2, sigma = 0.5e-2).
 */

#ifndef QAOA_HARDWARE_CALIBRATION_HPP
#define QAOA_HARDWARE_CALIBRATION_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/shortest_paths.hpp"
#include "hardware/coupling_map.hpp"

namespace qaoa::hw {

/**
 * Calibration snapshot for one device.
 *
 * Error rates are probabilities in [0, 1).  CNOT errors are stored
 * symmetrically per undirected coupling edge.
 */
class CalibrationData
{
  public:
    /** Uniform defaults: cnot_err on every edge, oneq_err / ro_err per
     *  qubit. */
    CalibrationData(const CouplingMap &map, double cnot_err = 1.0e-2,
                    double oneq_err = 1.0e-3, double readout_err = 2.0e-2);

    /** CNOT (two-qubit) error rate on edge {a, b}; edge must exist. */
    double cnotError(int a, int b) const;

    /** Sets the CNOT error rate on edge {a, b}. */
    void setCnotError(int a, int b, double err);

    /** Single-qubit gate error rate of qubit @p q. */
    double oneQubitError(int q) const;

    /** Sets the single-qubit gate error rate of qubit @p q. */
    void setOneQubitError(int q, double err);

    /** Readout error rate of qubit @p q. */
    double readoutError(int q) const;

    /** Sets the readout error rate of qubit @p q. */
    void setReadoutError(int q, double err);

    /** Success rate (1 - error)^2 of a CPHASE across edge {a, b}. */
    double cphaseSuccessRate(int a, int b) const;

    /** Relaxation time T1 of qubit @p q in nanoseconds. */
    double t1Ns(int q) const;

    /** Sets the relaxation time T1 of qubit @p q (must be > 0). */
    void setT1Ns(int q, double t1_ns);

    /** Dephasing time T2 of qubit @p q in nanoseconds. */
    double t2Ns(int q) const;

    /** Sets the dephasing time T2 of qubit @p q (must be > 0). */
    void setT2Ns(int q, double t2_ns);

    /** Number of physical qubits covered. */
    int numQubits() const { return static_cast<int>(oneq_err_.size()); }

  private:
    std::size_t edgeIndex(int a, int b) const;

    const CouplingMap *map_;
    std::vector<double> cnot_err_;    // indexed by edge position
    std::vector<double> oneq_err_;    // per qubit
    std::vector<double> readout_err_; // per qubit
    std::vector<double> t1_ns_;       // per qubit
    std::vector<double> t2_ns_;       // per qubit
};

/**
 * Synthetic calibration: CNOT errors drawn i.i.d. from N(mu, sigma),
 * clamped to [1e-4, 0.5) — the §V-F distribution (mu=1e-2, sigma=0.5e-2).
 */
CalibrationData randomCalibration(const CouplingMap &map, Rng &rng,
                                  double mu = 1.0e-2, double sigma = 0.5e-2);

/**
 * Variation-aware distance matrix (Fig. 6(d)).
 *
 * Edge {a, b} gets weight 1 / cphaseSuccessRate(a, b) and all-pairs
 * distances are recomputed with Floyd–Warshall.  Higher success rate ->
 * shorter distance.
 *
 * @param next_out Optional next-hop matrix for reliability-aware routing.
 */
graph::DistanceMatrix weightedDistances(const CouplingMap &map,
                                        const CalibrationData &calib,
                                        graph::NextHopMatrix *next_out =
                                            nullptr);

} // namespace qaoa::hw

#endif // QAOA_HARDWARE_CALIBRATION_HPP
