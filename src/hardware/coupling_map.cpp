#include "hardware/coupling_map.hpp"

#include "common/error.hpp"

namespace qaoa::hw {

CouplingMap::CouplingMap(graph::Graph coupling_graph, std::string name)
    : graph_(std::move(coupling_graph)), name_(std::move(name))
{
    QAOA_CHECK(graph_.numNodes() > 0, "empty coupling graph");
    QAOA_CHECK(graph_.isConnected(),
               "coupling graph of " << name_ << " must be connected");
    dist_ = graph::floydWarshall(graph_, /*weighted=*/false, &next_);
}

int
CouplingMap::distance(int a, int b) const
{
    QAOA_CHECK(a >= 0 && a < numQubits() && b >= 0 && b < numQubits(),
               "physical qubit out of range");
    return static_cast<int>(dist_[static_cast<std::size_t>(a)]
                                 [static_cast<std::size_t>(b)]);
}

int
CouplingMap::nextHopTowards(int a, int b) const
{
    QAOA_CHECK(a >= 0 && a < numQubits() && b >= 0 && b < numQubits(),
               "physical qubit out of range");
    return next_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

} // namespace qaoa::hw
