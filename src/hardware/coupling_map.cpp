#include "hardware/coupling_map.hpp"

#include "common/error.hpp"

namespace qaoa::hw {

CouplingMap::CouplingMap(graph::Graph coupling_graph, std::string name)
    : CouplingMap(std::move(coupling_graph), std::move(name),
                  /*require_connected=*/true)
{
}

CouplingMap::CouplingMap(graph::Graph coupling_graph, std::string name,
                         bool require_connected)
    : graph_(std::move(coupling_graph)), name_(std::move(name))
{
    QAOA_CHECK(graph_.numNodes() > 0, "empty coupling graph");
    connected_ = graph_.isConnected();
    QAOA_CHECK(connected_ || !require_connected,
               "coupling graph of " << name_ << " must be connected");
    dist_ = graph::floydWarshall(graph_, /*weighted=*/false, &next_);
}

int
CouplingMap::distance(int a, int b) const
{
    QAOA_CHECK(a >= 0 && a < numQubits() && b >= 0 && b < numQubits(),
               "physical qubit out of range");
    double d = dist_[static_cast<std::size_t>(a)]
                    [static_cast<std::size_t>(b)];
    if (d == graph::kInfDistance)
        return kUnreachable;
    return static_cast<int>(d);
}

int
CouplingMap::nextHopTowards(int a, int b) const
{
    QAOA_CHECK(a >= 0 && a < numQubits() && b >= 0 && b < numQubits(),
               "physical qubit out of range");
    return next_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

} // namespace qaoa::hw
