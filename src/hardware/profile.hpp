/**
 * @file
 * Hardware profiling — the connectivity-strength metric of QAIM (§IV-A).
 *
 * The connectivity strength of a physical qubit is the number of its first
 * neighbors plus the number of its (distinct, non-first) second neighbors.
 * Fig. 3(b) tabulates this for ibmq_20_tokyo (e.g. qubit-0 -> 7).  For
 * larger architectures the metric generalizes to deeper neighborhoods.
 */

#ifndef QAOA_HARDWARE_PROFILE_HPP
#define QAOA_HARDWARE_PROFILE_HPP

#include <vector>

#include "hardware/coupling_map.hpp"

namespace qaoa::hw {

/**
 * Connectivity strength of one qubit.
 *
 * @param map   Device topology.
 * @param qubit Physical qubit.
 * @param radius Neighborhood depth; 2 reproduces the paper's definition
 *               (first + second neighbors).  Must be >= 1.
 * @return Number of distinct qubits at hop distance 1..radius.
 */
int connectivityStrength(const CouplingMap &map, int qubit, int radius = 2);

/** Connectivity strengths of all qubits (index = physical qubit). */
std::vector<int> connectivityProfile(const CouplingMap &map, int radius = 2);

} // namespace qaoa::hw

#endif // QAOA_HARDWARE_PROFILE_HPP
