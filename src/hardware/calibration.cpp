#include "hardware/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qaoa::hw {

namespace {

/** Shared validity rule for every stored error rate. */
bool
validErrorRate(double err)
{
    return std::isfinite(err) && err >= 0.0 && err < 1.0;
}

/** IBM-era fallback coherence times (same defaults as sim/thermal). */
constexpr double kDefaultT1Ns = 90000.0;
constexpr double kDefaultT2Ns = 70000.0;

} // namespace

CalibrationData::CalibrationData(const CouplingMap &map, double cnot_err,
                                 double oneq_err, double readout_err)
    : map_(&map),
      cnot_err_(static_cast<std::size_t>(map.graph().numEdges()), cnot_err),
      oneq_err_(static_cast<std::size_t>(map.numQubits()), oneq_err),
      readout_err_(static_cast<std::size_t>(map.numQubits()), readout_err),
      t1_ns_(static_cast<std::size_t>(map.numQubits()), kDefaultT1Ns),
      t2_ns_(static_cast<std::size_t>(map.numQubits()), kDefaultT2Ns)
{
    QAOA_CHECK(validErrorRate(cnot_err),
               "CNOT error out of range [0, 1): " << cnot_err);
    QAOA_CHECK(validErrorRate(oneq_err),
               "1q error out of range [0, 1): " << oneq_err);
    QAOA_CHECK(validErrorRate(readout_err),
               "readout error out of range [0, 1): " << readout_err);
}

std::size_t
CalibrationData::edgeIndex(int a, int b) const
{
    if (a > b)
        std::swap(a, b);
    const auto &edges = map_->graph().edges();
    for (std::size_t i = 0; i < edges.size(); ++i)
        if (edges[i].u == a && edges[i].v == b)
            return i;
    QAOA_CHECK(false, "no coupling edge {" << a << ", " << b << "} on "
                                           << map_->name());
    return 0; // unreachable
}

double
CalibrationData::cnotError(int a, int b) const
{
    return cnot_err_[edgeIndex(a, b)];
}

void
CalibrationData::setCnotError(int a, int b, double err)
{
    QAOA_CHECK(validErrorRate(err),
               "CNOT error out of range [0, 1): " << err);
    cnot_err_[edgeIndex(a, b)] = err;
}

double
CalibrationData::oneQubitError(int q) const
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    return oneq_err_[static_cast<std::size_t>(q)];
}

void
CalibrationData::setOneQubitError(int q, double err)
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    QAOA_CHECK(validErrorRate(err), "1q error out of range [0, 1): " << err);
    oneq_err_[static_cast<std::size_t>(q)] = err;
}

double
CalibrationData::readoutError(int q) const
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    return readout_err_[static_cast<std::size_t>(q)];
}

void
CalibrationData::setReadoutError(int q, double err)
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    QAOA_CHECK(validErrorRate(err),
               "readout error out of range [0, 1): " << err);
    readout_err_[static_cast<std::size_t>(q)] = err;
}

double
CalibrationData::cphaseSuccessRate(int a, int b) const
{
    double s = 1.0 - cnotError(a, b);
    return s * s;
}

double
CalibrationData::t1Ns(int q) const
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    return t1_ns_[static_cast<std::size_t>(q)];
}

void
CalibrationData::setT1Ns(int q, double t1_ns)
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    QAOA_CHECK(std::isfinite(t1_ns) && t1_ns > 0.0,
               "non-positive T1: " << t1_ns);
    t1_ns_[static_cast<std::size_t>(q)] = t1_ns;
}

double
CalibrationData::t2Ns(int q) const
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    return t2_ns_[static_cast<std::size_t>(q)];
}

void
CalibrationData::setT2Ns(int q, double t2_ns)
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    QAOA_CHECK(std::isfinite(t2_ns) && t2_ns > 0.0,
               "non-positive T2: " << t2_ns);
    t2_ns_[static_cast<std::size_t>(q)] = t2_ns;
}

CalibrationData
randomCalibration(const CouplingMap &map, Rng &rng, double mu, double sigma)
{
    QAOA_CHECK(std::isfinite(mu) && std::isfinite(sigma),
               "calibration distribution parameters must be finite");
    QAOA_CHECK(sigma >= 0.0, "negative calibration sigma: " << sigma);
    CalibrationData calib(map);
    for (const auto &e : map.graph().edges()) {
        double err = rng.normal(mu, sigma);
        err = std::clamp(err, 1.0e-4, 0.5 - 1.0e-9);
        calib.setCnotError(e.u, e.v, err);
    }
    return calib;
}

graph::DistanceMatrix
weightedDistances(const CouplingMap &map, const CalibrationData &calib,
                  graph::NextHopMatrix *next_out)
{
    // Rebuild the coupling graph with reliability weights 1/R.
    graph::Graph weighted(map.numQubits());
    for (const auto &e : map.graph().edges()) {
        double rate = calib.cphaseSuccessRate(e.u, e.v);
        QAOA_ASSERT(rate > 0.0, "zero success rate on edge");
        weighted.addEdge(e.u, e.v, 1.0 / rate);
    }
    return graph::floydWarshall(weighted, /*weighted=*/true, next_out);
}

} // namespace qaoa::hw
