#include "hardware/calibration.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qaoa::hw {

CalibrationData::CalibrationData(const CouplingMap &map, double cnot_err,
                                 double oneq_err, double readout_err)
    : map_(&map),
      cnot_err_(static_cast<std::size_t>(map.graph().numEdges()), cnot_err),
      oneq_err_(static_cast<std::size_t>(map.numQubits()), oneq_err),
      readout_err_(static_cast<std::size_t>(map.numQubits()), readout_err)
{
    QAOA_CHECK(cnot_err >= 0.0 && cnot_err < 1.0, "CNOT error out of range");
    QAOA_CHECK(oneq_err >= 0.0 && oneq_err < 1.0, "1q error out of range");
    QAOA_CHECK(readout_err >= 0.0 && readout_err < 1.0,
               "readout error out of range");
}

std::size_t
CalibrationData::edgeIndex(int a, int b) const
{
    if (a > b)
        std::swap(a, b);
    const auto &edges = map_->graph().edges();
    for (std::size_t i = 0; i < edges.size(); ++i)
        if (edges[i].u == a && edges[i].v == b)
            return i;
    QAOA_CHECK(false, "no coupling edge {" << a << ", " << b << "} on "
                                           << map_->name());
    return 0; // unreachable
}

double
CalibrationData::cnotError(int a, int b) const
{
    return cnot_err_[edgeIndex(a, b)];
}

void
CalibrationData::setCnotError(int a, int b, double err)
{
    QAOA_CHECK(err >= 0.0 && err < 1.0, "CNOT error out of range: " << err);
    cnot_err_[edgeIndex(a, b)] = err;
}

double
CalibrationData::oneQubitError(int q) const
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    return oneq_err_[static_cast<std::size_t>(q)];
}

void
CalibrationData::setOneQubitError(int q, double err)
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    QAOA_CHECK(err >= 0.0 && err < 1.0, "1q error out of range: " << err);
    oneq_err_[static_cast<std::size_t>(q)] = err;
}

double
CalibrationData::readoutError(int q) const
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    return readout_err_[static_cast<std::size_t>(q)];
}

void
CalibrationData::setReadoutError(int q, double err)
{
    QAOA_CHECK(q >= 0 && q < numQubits(), "qubit out of range");
    QAOA_CHECK(err >= 0.0 && err < 1.0, "readout error out of range");
    readout_err_[static_cast<std::size_t>(q)] = err;
}

double
CalibrationData::cphaseSuccessRate(int a, int b) const
{
    double s = 1.0 - cnotError(a, b);
    return s * s;
}

CalibrationData
randomCalibration(const CouplingMap &map, Rng &rng, double mu, double sigma)
{
    CalibrationData calib(map);
    for (const auto &e : map.graph().edges()) {
        double err = rng.normal(mu, sigma);
        err = std::clamp(err, 1.0e-4, 0.5 - 1.0e-9);
        calib.setCnotError(e.u, e.v, err);
    }
    return calib;
}

graph::DistanceMatrix
weightedDistances(const CouplingMap &map, const CalibrationData &calib,
                  graph::NextHopMatrix *next_out)
{
    // Rebuild the coupling graph with reliability weights 1/R.
    graph::Graph weighted(map.numQubits());
    for (const auto &e : map.graph().edges()) {
        double rate = calib.cphaseSuccessRate(e.u, e.v);
        QAOA_ASSERT(rate > 0.0, "zero success rate on edge");
        weighted.addEdge(e.u, e.v, 1.0 / rate);
    }
    return graph::floydWarshall(weighted, /*weighted=*/true, next_out);
}

} // namespace qaoa::hw
