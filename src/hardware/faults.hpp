/**
 * @file
 * Hardware fault model: dead qubits, disabled couplings and calibration
 * drift, plus the machinery that derives a *degraded* device the compile
 * stack can route on.
 *
 * Real backends (ibmq_16_melbourne, ibmq_20_tokyo) routinely report dead
 * qubits and disabled couplings between calibration cycles; noise-adaptive
 * compilation (Murali et al., ASPLOS'19) treats such faulty elements as
 * first-class inputs.  A FaultSpec describes the faults (explicit lists
 * and/or seeded random rates); the FaultInjector removes the faulty
 * elements from the coupling graph, extracts the largest connected
 * component as the usable region, and re-derives calibration data for the
 * surviving couplings.  The resulting map may be disconnected — the
 * usable() mask confines placement to one component so routing never
 * crosses a fragment boundary.
 */

#ifndef QAOA_HARDWARE_FAULTS_HPP
#define QAOA_HARDWARE_FAULTS_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hardware/calibration.hpp"
#include "hardware/coupling_map.hpp"

namespace qaoa::hw {

/**
 * Declarative description of the faults to inject.
 *
 * Explicit lists and random rates combine: the named elements always
 * fail, and every remaining qubit/edge additionally fails with the given
 * probability, drawn from a deterministic stream seeded by @p seed (the
 * same seed always degrades a device identically).
 */
struct FaultSpec
{
    /** Physical qubits that are completely unusable. */
    std::vector<int> dead_qubits;

    /** Couplings reported down by calibration ({a, b} order-insensitive). */
    std::vector<std::pair<int, int>> disabled_edges;

    /** Probability that each remaining qubit is dead. */
    double qubit_fault_rate = 0.0;

    /** Probability that each remaining coupling is disabled. */
    double edge_fault_rate = 0.0;

    /**
     * Calibration-drift multiplier applied to every surviving CNOT error
     * rate (1.0 = no drift; 2.0 models a stale snapshot whose errors
     * doubled).  Results are clamped below 1.
     */
    double drift_multiplier = 1.0;

    /** Seed of the random fault stream. */
    std::uint64_t seed = 2020;

    /** True when the spec injects nothing (the perfect-device case). */
    bool empty() const
    {
        return dead_qubits.empty() && disabled_edges.empty() &&
               qubit_fault_rate == 0.0 && edge_fault_rate == 0.0 &&
               drift_multiplier == 1.0;
    }
};

/**
 * Applies a FaultSpec to a device and owns the degraded view.
 *
 * The degraded CouplingMap keeps the original physical-qubit indexing
 * (so layouts, calibration and reports stay in device coordinates) but
 * drops every faulty coupling; dead qubits become isolated nodes.  When
 * the surviving graph fragments, the largest connected component is the
 * usable region and usable() marks its members.
 *
 * Not copyable/movable: the derived CalibrationData points into the
 * owned map.
 */
class FaultInjector
{
  public:
    /**
     * Degrades @p base according to @p spec.
     *
     * @param base       The healthy device.
     * @param spec       Faults to inject (validated against @p base).
     * @param base_calib Optional healthy calibration snapshot; surviving
     *        elements keep their rates (times drift).  nullptr uses
     *        CalibrationData defaults.
     * @throws std::runtime_error when the spec names unknown qubits or
     *         couplings, rates are outside [0, 1], or the drift
     *         multiplier is not positive.
     */
    FaultInjector(const CouplingMap &base, const FaultSpec &spec,
                  const CalibrationData *base_calib = nullptr);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** The degraded topology (may be disconnected). */
    const CouplingMap &map() const { return map_; }

    /** Calibration restricted to surviving elements, with drift applied. */
    const CalibrationData &calibration() const { return calib_; }

    /** usable()[q] != 0 iff q is alive and in the largest component. */
    const std::vector<char> &usable() const { return usable_; }

    /** Number of usable qubits (largest-component size minus none). */
    int usableCount() const { return usable_count_; }

    /** True when faults split the device into several fragments. */
    bool fragmented() const { return !map_.connected(); }

    /** True when a @p num_logical-qubit program fits the usable region. */
    bool supports(int num_logical) const
    {
        return num_logical <= usable_count_;
    }

    /** Dead qubits after resolving random draws (sorted, distinct). */
    const std::vector<int> &deadQubits() const { return dead_; }

    /** Disabled couplings after resolving random draws. */
    const std::vector<std::pair<int, int>> &disabledEdges() const
    {
        return disabled_;
    }

    /** Human-readable summary lines of what was injected. */
    const std::vector<std::string> &notes() const { return notes_; }

  private:
    /** Resolved faults, computed before the degraded map is built. */
    struct Resolved
    {
        graph::Graph degraded;
        std::vector<int> dead;
        std::vector<std::pair<int, int>> disabled;
    };

    static Resolved resolve(const CouplingMap &base, const FaultSpec &spec);

    Resolved resolved_;
    CouplingMap map_;
    CalibrationData calib_;
    std::vector<int> dead_;
    std::vector<std::pair<int, int>> disabled_;
    std::vector<char> usable_;
    int usable_count_ = 0;
    std::vector<std::string> notes_;
};

} // namespace qaoa::hw

#endif // QAOA_HARDWARE_FAULTS_HPP
