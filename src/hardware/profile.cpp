#include "hardware/profile.hpp"

#include "common/error.hpp"
#include "graph/shortest_paths.hpp"

namespace qaoa::hw {

int
connectivityStrength(const CouplingMap &map, int qubit, int radius)
{
    QAOA_CHECK(radius >= 1, "neighborhood radius must be >= 1");
    QAOA_CHECK(qubit >= 0 && qubit < map.numQubits(),
               "qubit out of range");
    // Hop distances are precomputed in the coupling map; count qubits
    // within the radius, excluding the qubit itself.
    int strength = 0;
    for (int other = 0; other < map.numQubits(); ++other) {
        if (other == qubit)
            continue;
        int d = map.distance(qubit, other);
        if (d >= 1 && d <= radius)
            ++strength;
    }
    return strength;
}

std::vector<int>
connectivityProfile(const CouplingMap &map, int radius)
{
    std::vector<int> profile(static_cast<std::size_t>(map.numQubits()));
    for (int q = 0; q < map.numQubits(); ++q)
        profile[static_cast<std::size_t>(q)] =
            connectivityStrength(map, q, radius);
    return profile;
}

} // namespace qaoa::hw
