#include "hardware/faults.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qaoa::hw {

namespace {

/** Canonical (min, max) edge key. */
std::pair<int, int>
edgeKey(int a, int b)
{
    return {std::min(a, b), std::max(a, b)};
}

} // namespace

FaultInjector::Resolved
FaultInjector::resolve(const CouplingMap &base, const FaultSpec &spec)
{
    const int n = base.numQubits();
    QAOA_CHECK(spec.qubit_fault_rate >= 0.0 && spec.qubit_fault_rate <= 1.0,
               "qubit fault rate out of [0, 1]: " << spec.qubit_fault_rate);
    QAOA_CHECK(spec.edge_fault_rate >= 0.0 && spec.edge_fault_rate <= 1.0,
               "edge fault rate out of [0, 1]: " << spec.edge_fault_rate);
    QAOA_CHECK(std::isfinite(spec.drift_multiplier) &&
                   spec.drift_multiplier > 0.0,
               "drift multiplier must be positive, got "
                   << spec.drift_multiplier);

    std::vector<bool> dead(static_cast<std::size_t>(n), false);
    for (int q : spec.dead_qubits) {
        QAOA_CHECK(q >= 0 && q < n, "dead qubit " << q << " not on "
                                                  << base.name());
        dead[static_cast<std::size_t>(q)] = true;
    }
    std::vector<std::pair<int, int>> disabled_keys;
    for (auto [a, b] : spec.disabled_edges) {
        QAOA_CHECK(a >= 0 && a < n && b >= 0 && b < n && base.coupled(a, b),
                   "disabled edge {" << a << ", " << b << "} is not a "
                                     << base.name() << " coupling");
        disabled_keys.push_back(edgeKey(a, b));
    }

    // Random faults come from one deterministic stream: first a Bernoulli
    // per qubit (index order), then one per coupling (canonical edge
    // order).  Identical seeds always degrade identically.
    Rng rng(spec.seed);
    if (spec.qubit_fault_rate > 0.0)
        for (int q = 0; q < n; ++q)
            if (!dead[static_cast<std::size_t>(q)] &&
                rng.bernoulli(spec.qubit_fault_rate))
                dead[static_cast<std::size_t>(q)] = true;
    if (spec.edge_fault_rate > 0.0)
        for (const graph::Edge &e : base.graph().edges()) {
            auto key = edgeKey(e.u, e.v);
            bool already =
                std::find(disabled_keys.begin(), disabled_keys.end(),
                          key) != disabled_keys.end();
            if (!already && rng.bernoulli(spec.edge_fault_rate))
                disabled_keys.push_back(key);
        }
    std::sort(disabled_keys.begin(), disabled_keys.end());

    Resolved out;
    out.degraded = graph::Graph(n);
    for (const graph::Edge &e : base.graph().edges()) {
        if (dead[static_cast<std::size_t>(e.u)] ||
            dead[static_cast<std::size_t>(e.v)])
            continue;
        if (std::binary_search(disabled_keys.begin(), disabled_keys.end(),
                               edgeKey(e.u, e.v)))
            continue;
        out.degraded.addEdge(e.u, e.v, e.weight);
    }
    for (int q = 0; q < n; ++q)
        if (dead[static_cast<std::size_t>(q)])
            out.dead.push_back(q);
    out.disabled = std::move(disabled_keys);
    return out;
}

FaultInjector::FaultInjector(const CouplingMap &base, const FaultSpec &spec,
                             const CalibrationData *base_calib)
    : resolved_(resolve(base, spec)),
      map_(std::move(resolved_.degraded), base.name() + "/degraded",
           /*require_connected=*/false),
      calib_(map_),
      dead_(std::move(resolved_.dead)),
      disabled_(std::move(resolved_.disabled))
{
    const int n = base.numQubits();

    // Calibration for the surviving elements: copy the healthy snapshot
    // (or the defaults already in calib_) and apply drift to the CNOT
    // rates, clamped below 1 so success rates stay positive.
    constexpr double kMaxError = 1.0 - 1.0e-9;
    for (const graph::Edge &e : map_.graph().edges()) {
        double err = base_calib ? base_calib->cnotError(e.u, e.v)
                                : calib_.cnotError(e.u, e.v);
        calib_.setCnotError(e.u, e.v,
                            std::min(err * spec.drift_multiplier,
                                     kMaxError));
    }
    if (base_calib)
        for (int q = 0; q < n; ++q) {
            calib_.setOneQubitError(q, base_calib->oneQubitError(q));
            calib_.setReadoutError(q, base_calib->readoutError(q));
        }

    // Usable region: the largest connected component, minus dead qubits
    // (a dead qubit can only appear there as an isolated node when the
    // whole device collapsed to singletons).
    std::vector<int> lcc = graph::largestComponent(map_.graph());
    usable_.assign(static_cast<std::size_t>(n), 0);
    for (int q : lcc)
        usable_[static_cast<std::size_t>(q)] = 1;
    for (int q : dead_)
        usable_[static_cast<std::size_t>(q)] = 0;
    usable_count_ = static_cast<int>(
        std::count(usable_.begin(), usable_.end(), 1));

    std::ostringstream os;
    os << "faults on " << base.name() << ": " << dead_.size()
       << " dead qubit(s), " << disabled_.size() << "/"
       << base.graph().numEdges() << " coupling(s) disabled";
    notes_.push_back(os.str());
    if (!dead_.empty()) {
        std::ostringstream qs;
        qs << "dead qubits:";
        for (int q : dead_)
            qs << " " << q;
        notes_.push_back(qs.str());
    }
    if (fragmented()) {
        std::ostringstream fs;
        fs << "device fragmented into "
           << graph::connectedComponents(map_.graph()).size()
           << " components; largest usable region has " << usable_count_
           << "/" << n << " qubits";
        notes_.push_back(fs.str());
    }
    if (spec.drift_multiplier != 1.0) {
        std::ostringstream ds;
        ds << "calibration drift x" << spec.drift_multiplier
           << " applied to CNOT error rates";
        notes_.push_back(ds.str());
    }
}

} // namespace qaoa::hw
