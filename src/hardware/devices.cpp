#include "hardware/devices.hpp"

#include <array>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "graph/generators.hpp"

namespace qaoa::hw {

CouplingMap
ibmqTokyo20()
{
    // 4 rows x 5 columns; nodes row-major (row r holds 5r .. 5r+4).
    // Horizontal + vertical lattice edges plus the 12 diagonal couplers.
    // The Fig. 3(b) connectivity strengths (e.g. qubit-0 -> 7,
    // qubit-7/qubit-12 -> 18) pin this edge list down; they are verified
    // in tests/test_hardware.cpp.
    static const std::array<std::pair<int, int>, 43> edges = {{
        // horizontal
        {0, 1}, {1, 2}, {2, 3}, {3, 4},
        {5, 6}, {6, 7}, {7, 8}, {8, 9},
        {10, 11}, {11, 12}, {12, 13}, {13, 14},
        {15, 16}, {16, 17}, {17, 18}, {18, 19},
        // vertical
        {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9},
        {5, 10}, {6, 11}, {7, 12}, {8, 13}, {9, 14},
        {10, 15}, {11, 16}, {12, 17}, {13, 18}, {14, 19},
        // diagonal
        {1, 7}, {2, 6}, {3, 9}, {4, 8},
        {5, 11}, {6, 10}, {7, 13}, {8, 12},
        {11, 17}, {12, 16}, {13, 19}, {14, 18},
    }};
    graph::Graph g(20);
    for (auto [u, v] : edges)
        g.addEdge(u, v);
    return CouplingMap(std::move(g), "ibmq_20_tokyo");
}

CouplingMap
ibmqMelbourne15()
{
    // Two-row ladder: top row 0..6, bottom row 14..7 (reversed), with
    // vertical rungs — the standard ibmq_16_melbourne coupling map (15
    // operational qubits).
    static const std::array<std::pair<int, int>, 20> edges = {{
        {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},          // top row
        {14, 13}, {13, 12}, {12, 11}, {11, 10}, {10, 9}, {9, 8},
        {8, 7},                                                   // bottom
        {0, 14}, {1, 13}, {2, 12}, {3, 11}, {4, 10}, {5, 9},
        {6, 8},                                                   // rungs
    }};
    graph::Graph g(15);
    for (auto [u, v] : edges)
        g.addEdge(u, v);
    return CouplingMap(std::move(g), "ibmq_16_melbourne");
}

CalibrationData
melbourneCalibration(const CouplingMap &melbourne)
{
    QAOA_CHECK(melbourne.numQubits() == 15 &&
                   melbourne.graph().numEdges() == 20,
               "calibration snapshot requires the melbourne topology");
    // The 20 CNOT error rates reported in Fig. 10(a) (4/8/2020 snapshot),
    // assigned in canonical sorted-edge order.
    static const std::array<double, 20> rates = {{
        1.87e-2, 1.77e-2, 2.85e-2, 7.63e-2, 8.29e-2,
        1.54e-2, 8.60e-2, 2.26e-2, 5.03e-2, 4.16e-2,
        7.63e-2, 5.80e-2, 2.96e-2, 3.68e-2, 4.11e-2,
        4.70e-2, 7.78e-2, 3.46e-2, 3.89e-2, 2.87e-2,
    }};
    CalibrationData calib(melbourne);
    const auto &edges = melbourne.graph().edges();
    QAOA_ASSERT(edges.size() == rates.size(), "edge/rate count mismatch");
    for (std::size_t i = 0; i < edges.size(); ++i)
        calib.setCnotError(edges[i].u, edges[i].v, rates[i]);
    return calib;
}

CouplingMap
linearDevice(int n)
{
    QAOA_CHECK(n >= 2, "linear device needs at least 2 qubits");
    return CouplingMap(graph::pathGraph(n),
                       "linear_" + std::to_string(n));
}

CouplingMap
ringDevice(int n)
{
    QAOA_CHECK(n >= 3, "ring device needs at least 3 qubits");
    return CouplingMap(graph::cycleGraph(n), "ring_" + std::to_string(n));
}

CouplingMap
ibmqPoughkeepsie20()
{
    // Three-row ladder with sparse rungs (qiskit FakePoughkeepsie).
    static const std::array<std::pair<int, int>, 23> edges = {{
        {0, 1}, {1, 2}, {2, 3}, {3, 4},                    // top row
        {5, 6}, {6, 7}, {7, 8}, {8, 9},                    // second row
        {10, 11}, {11, 12}, {12, 13}, {13, 14},            // third row
        {15, 16}, {16, 17}, {17, 18}, {18, 19},            // bottom row
        {0, 5}, {4, 9},                                    // rungs 1-2
        {5, 10}, {7, 12}, {9, 14},                         // rungs 2-3
        {10, 15}, {14, 19},                                // rungs 3-4
    }};
    graph::Graph g(20);
    for (auto [u, v] : edges)
        g.addEdge(u, v);
    return CouplingMap(std::move(g), "ibmq_poughkeepsie");
}

CouplingMap
heavyHexFalcon27()
{
    // The 27-qubit Falcon heavy-hex layout (e.g. ibmq_montreal).
    static const std::array<std::pair<int, int>, 28> edges = {{
        {0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 5}, {4, 7}, {5, 8},
        {6, 7}, {7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14}, {12, 13},
        {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18},
        {18, 21}, {19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24},
        {24, 25}, {25, 26},
    }};
    graph::Graph g(27);
    for (auto [u, v] : edges)
        g.addEdge(u, v);
    return CouplingMap(std::move(g), "heavy_hex_falcon_27");
}

CouplingMap
gridDevice(int rows, int cols)
{
    QAOA_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2,
               "grid device needs at least 2 qubits");
    return CouplingMap(graph::gridGraph(rows, cols),
                       "grid_" + std::to_string(rows) + "x" +
                           std::to_string(cols));
}

namespace {

/** "linear7" -> 7; throws on a missing or malformed size. */
int
parseSize(const std::string &name, std::size_t prefix_len)
{
    const std::string digits = name.substr(prefix_len);
    QAOA_CHECK(!digits.empty() &&
                   digits.find_first_not_of("0123456789") ==
                       std::string::npos,
               "bad device size in \"" << name << "\"");
    return std::stoi(digits);
}

} // namespace

CouplingMap
deviceByName(const std::string &name)
{
    if (name == "tokyo")
        return ibmqTokyo20();
    if (name == "melbourne")
        return ibmqMelbourne15();
    if (name == "poughkeepsie")
        return ibmqPoughkeepsie20();
    if (name == "heavyhex")
        return heavyHexFalcon27();
    if (name == "grid6x6")
        return gridDevice(6, 6);
    if (name.rfind("linear", 0) == 0)
        return linearDevice(parseSize(name, 6));
    if (name.rfind("ring", 0) == 0)
        return ringDevice(parseSize(name, 4));
    QAOA_CHECK(false, "unknown device: " << name);
    return ibmqTokyo20(); // unreachable
}

CalibrationData
defaultCalibration(const CouplingMap &map)
{
    if (map.name() == "ibmq_16_melbourne")
        return melbourneCalibration(map);
    return CalibrationData(map);
}

} // namespace qaoa::hw
