/**
 * @file
 * Device library: the three target architectures of the evaluation (§V-B)
 * plus the simple topologies used in discussions and tests.
 *
 *  - ibmq_20_tokyo      — 20 qubits, dense 4x5 lattice with diagonals
 *                         (Fig. 3(a)); golden connectivity strengths of
 *                         Fig. 3(b) are unit-tested.
 *  - ibmq_16_melbourne  — 15 qubits, two-row ladder; ships with the
 *                         4/8/2020 CNOT-error calibration snapshot of
 *                         Fig. 10(a).
 *  - grid NxM           — the hypothetical 36-qubit 6x6 device (§V-H).
 *  - linear / ring      — Fig. 1(d) and the §VI 8-qubit cyclic comparison.
 */

#ifndef QAOA_HARDWARE_DEVICES_HPP
#define QAOA_HARDWARE_DEVICES_HPP

#include "hardware/calibration.hpp"
#include "hardware/coupling_map.hpp"

namespace qaoa::hw {

/** 20-qubit ibmq_20_tokyo coupling map (Fig. 3(a)). */
CouplingMap ibmqTokyo20();

/** 15-qubit ibmq_16_melbourne coupling map. */
CouplingMap ibmqMelbourne15();

/**
 * CNOT-error calibration snapshot of ibmq_16_melbourne (Fig. 10(a),
 * calibrated 4/8/2020).
 *
 * The 20 reported error rates are assigned to the 20 coupling edges in
 * canonical (sorted) edge order; the multiset of rates matches the figure
 * exactly, which preserves the edge-to-edge variability VIC exploits (the
 * figure's node-to-edge mapping is not fully recoverable from the text).
 */
CalibrationData melbourneCalibration(const CouplingMap &melbourne);

/** n-qubit linear chain (Fig. 1(d) uses n = 4). */
CouplingMap linearDevice(int n);

/** n-qubit ring — the 8-qubit cyclic architecture of §VI. */
CouplingMap ringDevice(int n);

/** rows x cols grid device — §V-H uses 6x6. */
CouplingMap gridDevice(int rows, int cols);

/**
 * 20-qubit ibmq_poughkeepsie — the device of the §VI crosstalk
 * discussion (Murali et al. found 5 of its couplings crosstalk-prone).
 * Ladder of three horizontal rows with sparse rungs.
 */
CouplingMap ibmqPoughkeepsie20();

/**
 * 27-qubit IBM heavy-hex (Falcon) lattice — the coupling family of
 * IBM's post-2020 devices; included so the methodologies can be
 * evaluated on current hardware shapes.
 */
CouplingMap heavyHexFalcon27();

/**
 * Device by CLI/wire name: "tokyo", "melbourne", "poughkeepsie",
 * "heavyhex", "grid6x6", "linearN", "ringN".  One shared parser for
 * qaoa_compile, qaoa_lint and the serve request decoder.
 *
 * @throws std::runtime_error on an unknown name or a malformed
 *         linear/ring size.
 */
CouplingMap deviceByName(const std::string &name);

/**
 * Default calibration snapshot for @p map: the Fig. 10(a) Melbourne
 * data when the map is ibmq_16_melbourne, CalibrationData defaults
 * otherwise.
 */
CalibrationData defaultCalibration(const CouplingMap &map);

} // namespace qaoa::hw

#endif // QAOA_HARDWARE_DEVICES_HPP
