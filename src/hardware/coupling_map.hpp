/**
 * @file
 * Hardware coupling graph with cached hop distances and next hops.
 *
 * The coupling map answers the two questions routing asks constantly:
 * "how far apart are physical qubits a and b" and "which neighbor of a is
 * on a shortest path towards b".  Hop distances are precomputed once with
 * Floyd–Warshall (§IV-A notes distances are measured once and read from
 * memory during QAIM).
 */

#ifndef QAOA_HARDWARE_COUPLING_MAP_HPP
#define QAOA_HARDWARE_COUPLING_MAP_HPP

#include <string>

#include "graph/graph.hpp"
#include "graph/shortest_paths.hpp"

namespace qaoa::hw {

/**
 * Immutable hardware topology.
 *
 * Wraps the coupling graph together with precomputed hop distance and
 * next-hop matrices.  Weighted (variation-aware) distance matrices are
 * computed separately from calibration data — see
 * calibration.hpp::weightedDistances().
 */
class CouplingMap
{
  public:
    /** Builds a coupling map from a connected coupling graph. */
    explicit CouplingMap(graph::Graph coupling_graph,
                         std::string name = "device");

    /**
     * Builds a coupling map that may be disconnected — the post-fault
     * (degraded) device shape.  Unreachable pairs get infinite distance
     * in distances() and the distance() sentinel below; callers must
     * confine placement to one connected component (see
     * hardware/faults.hpp).
     */
    CouplingMap(graph::Graph coupling_graph, std::string name,
                bool require_connected);

    /** Sentinel returned by distance() for unreachable pairs. */
    static constexpr int kUnreachable = 1 << 29;

    /** Device name (e.g. "ibmq_20_tokyo"). */
    const std::string &name() const { return name_; }

    /** True when every pair of qubits is joined by couplings. */
    bool connected() const { return connected_; }

    /** Number of physical qubits. */
    int numQubits() const { return graph_.numNodes(); }

    /** The raw coupling graph. */
    const graph::Graph &graph() const { return graph_; }

    /** True when a native two-qubit gate is allowed between a and b. */
    bool coupled(int a, int b) const { return graph_.hasEdge(a, b); }

    /** Hop distance between physical qubits a and b; kUnreachable when
     *  no coupling path joins them (degraded devices only). */
    int distance(int a, int b) const;

    /** First qubit after @p a on a shortest path a -> b. */
    int nextHopTowards(int a, int b) const;

    /** The full hop-distance matrix (doubles for API uniformity). */
    const graph::DistanceMatrix &distances() const { return dist_; }

    /** Neighbors of physical qubit @p q. */
    const std::vector<int> &neighbors(int q) const
    {
        return graph_.neighbors(q);
    }

  private:
    graph::Graph graph_;
    std::string name_;
    graph::DistanceMatrix dist_;
    graph::NextHopMatrix next_;
    bool connected_ = true;
};

} // namespace qaoa::hw

#endif // QAOA_HARDWARE_COUPLING_MAP_HPP
