/**
 * @file
 * Flat key/value codec: one JSON object whose values are all strings.
 *
 * The same dependency-free grammar as the optimizer checkpoints and
 * tests/budgets files, factored out for the serving stack: wire
 * messages (serve/protocol.hpp) and compile-cache entries
 * (serve/cache.hpp) are both one flat object per payload.  Unlike the
 * checkpoint parser this codec supports the JSON string escapes
 * \\n \\r \\t \\" \\\\ so QASM bodies and human-readable diagnostics
 * embed losslessly.
 *
 * Keys keep their insertion order on serialize (stable output for
 * golden tests); duplicate keys are a parse error.
 */

#ifndef QAOA_COMMON_KV_HPP
#define QAOA_COMMON_KV_HPP

#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace qaoa::kv {

/** Ordered string map with last-one-wins lookup helpers. */
class Record
{
  public:
    /** Appends a field; duplicate keys are a programming error. */
    void set(const std::string &key, const std::string &value);

    /** True when @p key is present. */
    [[nodiscard]] bool has(const std::string &key) const;

    /** Value of @p key; throws std::runtime_error when absent. */
    [[nodiscard]] const std::string &get(const std::string &key) const;

    /** Value of @p key, or @p fallback when absent. */
    [[nodiscard]] std::string get(const std::string &key,
                                  const std::string &fallback) const;

    /** All fields in insertion order. */
    const std::vector<std::pair<std::string, std::string>> &
    fields() const
    {
        return fields_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/** Serializes @p record as a flat JSON object (escaped, one line). */
[[nodiscard]] std::string serialize(const Record &record);

/**
 * Parses a serialize()d document.
 *
 * @throws qaoa::Error (code Malformed/Unsupported, byte offset set) on
 *         malformed input, non-string values, unsupported escapes,
 *         duplicate keys, or trailing garbage.
 */
[[nodiscard]] Record parse(const std::string &text);

/**
 * Non-throwing parse for untrusted wire input: the Status carries the
 * diagnostic code and the byte offset of the first malformed byte.
 */
[[nodiscard]] StatusOr<Record> tryParse(const std::string &text);

/** Escapes \\n \\r \\t \\" \\\\ for embedding in a JSON string. */
[[nodiscard]] std::string escape(const std::string &raw);

} // namespace qaoa::kv

#endif // QAOA_COMMON_KV_HPP
