#include "common/kv.hpp"

#include <cctype>

#include "common/error.hpp"

namespace qaoa::kv {

void
Record::set(const std::string &key, const std::string &value)
{
    QAOA_ASSERT(!has(key), "kv: duplicate field \"" << key << "\"");
    fields_.emplace_back(key, value);
}

bool
Record::has(const std::string &key) const
{
    for (const auto &[k, v] : fields_)
        if (k == key)
            return true;
    return false;
}

const std::string &
Record::get(const std::string &key) const
{
    for (const auto &[k, v] : fields_)
        if (k == key)
            return v;
    QAOA_CHECK(false, "kv: missing field \"" << key << "\"");
    static const std::string empty;
    return empty; // unreachable
}

std::string
Record::get(const std::string &key, const std::string &fallback) const
{
    return has(key) ? get(key) : fallback;
}

std::string
escape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          default: out.push_back(c); break;
        }
    }
    return out;
}

std::string
serialize(const Record &record)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : record.fields()) {
        out += first ? "\"" : ",\"";
        out += escape(key);
        out += "\":\"";
        out += escape(value);
        out += "\"";
        first = false;
    }
    out += "}";
    return out;
}

namespace {

/** Cursor-based parser for the one-object grammar. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Record
    run()
    {
        Record record;
        skipSpace();
        expect('{');
        skipSpace();
        if (peek() != '}') {
            for (;;) {
                const std::string key = parseString();
                skipSpace();
                expect(':');
                skipSpace();
                const std::string value = parseString();
                if (record.has(key))
                    raiseError(ErrorCode::Malformed,
                               "kv: duplicate key \"" + key + "\"",
                               static_cast<long long>(pos_));
                record.set(key, value);
                skipSpace();
                if (peek() == ',') {
                    ++pos_;
                    skipSpace();
                    continue;
                }
                break;
            }
        }
        expect('}');
        skipSpace();
        if (pos_ != text_.size())
            raiseError(ErrorCode::Malformed, "kv: trailing garbage",
                       static_cast<long long>(pos_));
        return record;
    }

  private:
    char
    peek() const
    {
        if (pos_ >= text_.size())
            raiseError(ErrorCode::Truncated, "kv: unexpected end of input",
                       static_cast<long long>(pos_));
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            raiseError(ErrorCode::Malformed,
                       std::string("kv: expected '") + c + "', got '" +
                           peek() + "'",
                       static_cast<long long>(pos_));
        ++pos_;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            char c = peek();
            ++pos_;
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            char esc = peek();
            ++pos_;
            switch (esc) {
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              default:
                raiseError(ErrorCode::Unsupported,
                           std::string("kv: unsupported escape '\\") +
                               esc + "'",
                           static_cast<long long>(pos_ - 1));
            }
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Record
parse(const std::string &text)
{
    return Parser(text).run();
}

StatusOr<Record>
tryParse(const std::string &text)
{
    try {
        return Parser(text).run();
    } catch (const Error &e) {
        return e.status();
    }
}

} // namespace qaoa::kv
