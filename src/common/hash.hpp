/**
 * @file
 * Streaming FNV-1a content hashing.
 *
 * One tiny, dependency-free hasher shared by everything that needs a
 * content address: metrics::problemHash() (optimizer checkpoints) and
 * serve::requestFingerprint() (the compile cache).  FNV-1a is not
 * cryptographic — collision resistance comes from also storing the
 * canonical pre-image next to the digest and comparing it on lookup
 * (see serve/cache.hpp), so a collision can at worst cause a miss,
 * never a wrong answer.
 */

#ifndef QAOA_COMMON_HASH_HPP
#define QAOA_COMMON_HASH_HPP

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace qaoa {

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    /** Mixes one byte. */
    void
    byte(std::uint8_t b)
    {
        h_ ^= b;
        h_ *= 1099511628211ULL;
    }

    /** Mixes a 64-bit value, low byte first. */
    void
    u64(std::uint64_t v)
    {
        for (int shift = 0; shift < 64; shift += 8)
            byte(static_cast<std::uint8_t>((v >> shift) & 0xffULL));
    }

    /** Mixes a double's bit pattern (NaNs hash by representation). */
    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof v, "double must be 64-bit");
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    /** Mixes a string's bytes followed by its length (so "ab","c" and
     *  "a","bc" hash differently when fed field by field). */
    void
    str(const std::string &s)
    {
        for (char c : s)
            byte(static_cast<std::uint8_t>(c));
        u64(s.size());
    }

    /** Current digest. */
    std::uint64_t value() const { return h_; }

    /** Digest as 16 lowercase hex characters. */
    std::string
    hex() const
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(h_));
        return buf;
    }

  private:
    std::uint64_t h_ = 1469598103934665603ULL;
};

} // namespace qaoa

#endif // QAOA_COMMON_HASH_HPP
