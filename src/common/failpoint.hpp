/**
 * @file
 * Deterministic failpoint injection for the persistence and wire stack.
 *
 * A failpoint is a named site in production code — `fs.write`,
 * `cache.persist`, `serve.frame_read`, ... — where a fault can be
 * injected on demand: return a chosen errno, truncate a write, or kill
 * the process on the spot (a power-cut simulation: `std::_Exit`, no
 * flushing, no atexit handlers).  Sites are compiled in permanently and
 * cost one relaxed atomic load plus one branch while nothing is armed,
 * so they stay in release builds and the crash-consistency harness can
 * drive the real binary through every schedule.
 *
 * Arming is textual, via QAOA_FAILPOINTS (or a tool flag):
 *
 *     name '=' action [ '@' trigger ( ',' trigger )* ]   entries joined by ';'
 *
 *     action  := 'errno' ':' E   return the errno E (name like ENOSPC, or a number)
 *              | 'short'         stop a write halfway and fail with EIO
 *              | 'abort'         std::_Exit(kAbortExitCode) at the site
 *              | 'off'           disarm this point
 *     trigger := 'hit=' N        fire on the Nth evaluation only (1-based)
 *              | 'from=' N       fire on every evaluation >= N
 *              | 'p=' X          fire with probability X, seeded (deterministic)
 *              | 'seed=' N       seed for p= (default QAOA_FAILPOINT_SEED or 0)
 *
 * e.g.  QAOA_FAILPOINTS='fs.write=errno:ENOSPC@hit=1;fs.rename=abort'
 *
 * Every name polled anywhere in src/ or tools/ must appear exactly once
 * in the catalogue in failpoint.cpp, and each catalogued name has
 * exactly one poll site — the QE106 invariant keeps spec strings,
 * documentation and code from drifting apart.
 */

#ifndef QAOA_COMMON_FAILPOINT_HPP
#define QAOA_COMMON_FAILPOINT_HPP

#include <atomic>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace qaoa::failpoint {

/** Exit code used by the 'abort' action (distinct from every documented
 *  tool exit code, so harnesses can tell an injected crash from a real
 *  failure). */
inline constexpr int kAbortExitCode = 86;

/** What an armed failpoint does when its trigger fires. */
enum class Action {
    None,        ///< not firing this time
    ReturnErrno, ///< caller should fail with `error_number`
    ShortWrite,  ///< caller should truncate the write, then fail
    Abort,       ///< handled inside poll(): the process is gone
};

/** Result of evaluating a failpoint site. */
struct Fire {
    Action action = Action::None;
    int error_number = 0; ///< errno to surface for ReturnErrno/ShortWrite

    /** True when the site should inject a fault. */
    [[nodiscard]] bool fires() const { return action != Action::None; }
};

namespace detail {
/** Cold global: false until the first successful arm.  poll() reads it
 *  with relaxed ordering, so a disarmed failpoint is one predictable
 *  branch on a never-written cache line. */
extern std::atomic<bool> g_armed;

/** Slow path: trigger bookkeeping under the registry mutex. */
[[nodiscard]] Fire evaluate(const char *name);
} // namespace detail

/**
 * Evaluates the failpoint @p name.  The fast (disarmed) path is a
 * single relaxed load and branch.  An armed 'abort' action never
 * returns — the process exits with kAbortExitCode immediately.
 */
[[nodiscard]] inline Fire
poll(const char *name)
{
    if (!detail::g_armed.load(std::memory_order_relaxed)) [[likely]]
        return {};
    return detail::evaluate(name);
}

/** True when at least one failpoint is armed. */
[[nodiscard]] inline bool
anyArmed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

/**
 * Arms failpoints from a spec string (grammar in the file comment).
 * Unknown names, actions, triggers or errno tokens are rejected with
 * InvalidArgument and leave the registry untouched.
 */
[[nodiscard]] Status armFromSpec(const std::string &spec,
                                 std::uint64_t default_seed = 0);

/**
 * Arms from the QAOA_FAILPOINTS environment variable (empty/unset is a
 * no-op success); QAOA_FAILPOINT_SEED, when set, seeds p= triggers that
 * do not carry their own seed=.
 */
[[nodiscard]] Status armFromEnv();

/** Disarms every failpoint and resets all hit counters. */
void disarmAll();

/** One "name=action[@triggers] hits=H fired=F" line per armed point,
 *  sorted by name — for health frames and operator logs. */
[[nodiscard]] std::vector<std::string> armedList();

/** All registered failpoint names, sorted (the QE106 catalogue). */
[[nodiscard]] std::vector<std::string> catalogue();

/**
 * Parses an errno token: a symbolic name from the supported table
 * ("ENOSPC", case-insensitive) or a positive decimal number.
 *
 * @return the errno value, or 0 when the token is not recognised.
 */
[[nodiscard]] int errnoFromToken(const std::string &token);

/** Lowercase symbolic name for @p error_number ("enospc"), or "e<N>"
 *  for values outside the table — used for quarantine sidecar names. */
[[nodiscard]] std::string errnoShortName(int error_number);

} // namespace qaoa::failpoint

#endif // QAOA_COMMON_FAILPOINT_HPP
