/**
 * @file
 * Deterministic random-number generation.
 *
 * Every stochastic component in the library takes an explicit seed (or an
 * Rng by reference); there is no global RNG state.  This keeps benchmark
 * tables and tests reproducible run-to-run.
 */

#ifndef QAOA_COMMON_RNG_HPP
#define QAOA_COMMON_RNG_HPP

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace qaoa {

/**
 * Thin seeded wrapper around std::mt19937_64.
 *
 * Provides the handful of draw primitives the library needs (uniform ints,
 * uniform/normal reals, Bernoulli, shuffles and subset picks) behind one
 * type so call sites never instantiate distributions ad hoc.
 */
class Rng
{
  public:
    /** Constructs a generator from an explicit 64-bit seed. */
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform integer in the closed interval [lo, hi]. */
    int
    uniformInt(int lo, int hi)
    {
        QAOA_ASSERT(lo <= hi, "empty integer range");
        return std::uniform_int_distribution<int>(lo, hi)(engine_);
    }

    /** Uniform std::size_t in [0, n-1]; n must be positive. */
    std::size_t
    index(std::size_t n)
    {
        QAOA_ASSERT(n > 0, "index() over empty range");
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
    }

    /** Uniform real in the half-open interval [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Normal draw with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /** Bernoulli trial with success probability p. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Fisher–Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    /** Picks a uniformly random element from a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        QAOA_ASSERT(!v.empty(), "pick() from empty vector");
        return v[index(v.size())];
    }

    /**
     * Draws k distinct values from {0, ..., n-1} in random order.
     *
     * @param n Size of the population.
     * @param k Number of distinct samples, k <= n.
     */
    std::vector<int> sampleWithoutReplacement(int n, int k);

    /** Derives an independent child seed (for per-instance generators). */
    std::uint64_t
    fork()
    {
        return engine_();
    }

    /** Access to the underlying engine for std:: algorithms. */
    std::mt19937_64 &engine() { return engine_; }

    /**
     * Serializes the full engine state (space-separated words, the
     * std::mt19937_64 stream format).  Restoring it with
     * setStateString() resumes the draw sequence exactly — used by
     * optimizer checkpoints for bit-identical resume.
     */
    std::string stateString() const;

    /** Restores a state captured by stateString(). @throws on
     *  malformed input. */
    void setStateString(const std::string &state);

  private:
    std::mt19937_64 engine_;
};

} // namespace qaoa

#endif // QAOA_COMMON_RNG_HPP
