#include "common/rng.hpp"

#include <numeric>
#include <sstream>

namespace qaoa {

std::string
Rng::stateString() const
{
    std::ostringstream os;
    os << engine_;
    return os.str();
}

void
Rng::setStateString(const std::string &state)
{
    std::istringstream is(state);
    is >> engine_;
    QAOA_CHECK(!is.fail(), "malformed RNG state string");
}

std::vector<int>
Rng::sampleWithoutReplacement(int n, int k)
{
    QAOA_CHECK(k >= 0 && k <= n,
               "cannot sample " << k << " distinct values from " << n);
    std::vector<int> pool(n);
    std::iota(pool.begin(), pool.end(), 0);
    // Partial Fisher–Yates: after i swaps the prefix holds the sample.
    for (int i = 0; i < k; ++i) {
        int j = uniformInt(i, n - 1);
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

} // namespace qaoa
