/**
 * @file
 * RunGuard — the one handle hot loops poll for cancellation,
 * deadlines and resource limits.
 *
 * The guard bundles a CancelToken, a Deadline and a ResourceLimits
 * table behind a single poll() call so threading resilience through
 * the pipeline costs one optional pointer per options struct
 * (RouterOptions, AStarOptions, QaoaCompileOptions, ...).  A null
 * guard pointer means "unguarded" and costs nothing.
 *
 * poll() checks the token on every call but reads the monotonic clock
 * only every kDeadlineStride-th call — a steady_clock read is ~25 ns,
 * which would otherwise dominate tight A* expansion loops; the
 * watchdog-overhead bar in bench_resilience (<2%) depends on this
 * decimation.  Deadline expiry is therefore detected within
 * kDeadlineStride polls, which is far below a millisecond in every
 * guarded loop.
 *
 * Guard table (enforced limits):
 *   max_statevector_bytes  Statevector allocation (16 bytes/amplitude)
 *   max_astar_expansions   A* node expansions per layer search
 *   max_router_swaps       SWAPs one routing run may insert (circuit
 *                          breaker against livelock-ish blowups)
 */

#ifndef QAOA_COMMON_GUARD_HPP
#define QAOA_COMMON_GUARD_HPP

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "common/cancel.hpp"
#include "common/deadline.hpp"

namespace qaoa::run {

/** Thrown when a resource guard limit is exceeded. */
class ResourceExceededError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Hard caps on unbounded-work stages; defaults are generous. */
struct ResourceLimits
{
    /** Statevector allocation cap (1 GiB ~= 26 qubits). */
    std::uint64_t max_statevector_bytes = 1ULL << 30;

    /** A* node-expansion cap per layer search. */
    int max_astar_expansions = 1 << 30;

    /** SWAP-count circuit breaker per routing run. */
    int max_router_swaps = 1 << 30;
};

/**
 * Copyable poll handle combining token + deadline + limits.
 *
 * Copies share the token's cancellation state but keep their own
 * poll-decimation counter, so a guard can be captured by value into
 * per-stage option structs.
 */
class RunGuard
{
  public:
    /** Clock-read decimation: deadline checked every N-th poll. */
    static constexpr std::uint32_t kDeadlineStride = 8;

    RunGuard() = default;

    RunGuard(CancelToken token, Deadline deadline,
             ResourceLimits limits = {})
        : token_(std::move(token)), deadline_(deadline), limits_(limits)
    {
    }

    RunGuard(const RunGuard &other)
        : token_(other.token_), deadline_(other.deadline_),
          limits_(other.limits_)
    {
    }

    RunGuard &
    operator=(const RunGuard &other)
    {
        token_ = other.token_;
        deadline_ = other.deadline_;
        limits_ = other.limits_;
        polls_.store(0, std::memory_order_relaxed);
        return *this;
    }

    const CancelToken &token() const { return token_; }
    const Deadline &deadline() const { return deadline_; }
    const ResourceLimits &limits() const { return limits_; }

    /**
     * Cooperative check point: throws CancelledError when the token
     * tripped, TimedOutError when the deadline expired (checked every
     * kDeadlineStride-th call).  @p where names the loop for the
     * error message.
     */
    void
    poll(const char *where) const
    {
        token_.throwIfCancelled(where);
        if (!deadline_.finite())
            return;
        const std::uint32_t n =
            polls_.fetch_add(1, std::memory_order_relaxed);
        if (n % kDeadlineStride == 0 && deadline_.expired())
            throw TimedOutError(std::string("deadline expired during ") +
                                where);
    }

    /** Always-check variant for coarse boundaries (stage entry). */
    void
    pollStrict(const char *where) const
    {
        token_.throwIfCancelled(where);
        if (deadline_.expired())
            throw TimedOutError(std::string("deadline expired during ") +
                                where);
    }

    /** Throws ResourceExceededError when an allocation of @p bytes
     *  would exceed max_statevector_bytes. */
    void checkAllocation(const char *what, std::uint64_t bytes) const;

    /**
     * Derives the guard for one pipeline stage: same token and
     * limits, deadline tightened to now + @p stage_budget_ms (never
     * looser than the total deadline; negative = no stage budget).
     */
    RunGuard
    stageGuard(double stage_budget_ms) const
    {
        return RunGuard(token_, deadline_.tightened(stage_budget_ms),
                        limits_);
    }

  private:
    CancelToken token_;
    Deadline deadline_;
    ResourceLimits limits_;
    /** Relaxed atomic, not a guarded field: the poll decimation
     *  counter only gates how often the (exact) token/deadline checks
     *  run, so a lost increment under contention merely shifts which
     *  poll does the real check. */
    mutable std::atomic<std::uint32_t> polls_{0};
};

} // namespace qaoa::run

#endif // QAOA_COMMON_GUARD_HPP
