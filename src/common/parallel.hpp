/**
 * @file
 * Thread-pool backed parallel-for / parallel-reduce.
 *
 * The statevector engine, the metrics harness and the benches all fan
 * identical independent work items across cores through this one
 * substrate.  Two properties drive the design:
 *
 *  1. **Determinism.**  Work is split into *fixed-size* chunks
 *     (kChunkSize elements) regardless of how many threads execute
 *     them, and reductions combine the per-chunk partial sums in chunk
 *     order on the calling thread.  Floating-point results are
 *     therefore bit-identical at 1 thread and at N threads.
 *
 *  2. **Cheap small cases.**  Ranges below kSerialCutoff run inline on
 *     the calling thread — no synchronization, no pool wake-up — so
 *     low-qubit simulations keep their single-threaded latency.
 *
 * Thread count resolution: setThreadCount() override > QAOA_THREADS
 * environment variable > std::thread::hardware_concurrency().  Nested
 * parallel regions degrade to serial execution instead of deadlocking
 * (e.g. a statevector sweep inside a parallel compile sweep).
 */

#ifndef QAOA_COMMON_PARALLEL_HPP
#define QAOA_COMMON_PARALLEL_HPP

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/sync.hpp"

namespace qaoa::par {

/** Elements per chunk — fixed so chunk boundaries (and hence reduction
 *  order) never depend on the thread count. */
inline constexpr std::uint64_t kChunkSize = 1ULL << 14;

/** Ranges smaller than this run inline on the calling thread. */
inline constexpr std::uint64_t kSerialCutoff = 1ULL << 14;

/**
 * Number of threads parallel regions will use.
 *
 * Resolution order: setThreadCount() override, then the QAOA_THREADS
 * environment variable (read once, cached), then
 * std::thread::hardware_concurrency().  Always >= 1.
 */
int threadCount();

/**
 * Overrides the thread count (benches and tests use this to compare
 * serial vs parallel execution).  @p n == 0 restores automatic
 * resolution.  Not safe to call from inside a parallel region.
 */
void setThreadCount(int n);

/** Chunk body: [chunk_begin, chunk_end) slice of the iteration range. */
using RangeBody = std::function<void(std::uint64_t, std::uint64_t)>;

/** Chunk body that also receives the chunk's ordinal index. */
using ChunkBody =
    std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>;

/** Chunk summand: returns the partial sum of one [begin, end) slice. */
using RangeSum = std::function<double(std::uint64_t, std::uint64_t)>;

/**
 * Executes @p body over [begin, end) split into kChunkSize chunks.
 *
 * Runs inline when the range is below kSerialCutoff, the resolved
 * thread count is 1, or the caller is already inside a parallel region.
 * Blocks until every chunk finished; the first exception thrown by any
 * chunk is rethrown on the calling thread.
 */
void parallelFor(std::uint64_t begin, std::uint64_t end,
                 const RangeBody &body);

/** parallelFor variant whose body receives (chunk_index, begin, end). */
void parallelForChunks(std::uint64_t begin, std::uint64_t end,
                       const ChunkBody &body);

/**
 * Deterministic sum reduction: @p chunkSum returns the partial sum of
 * one [chunk_begin, chunk_end) slice; partials are combined in chunk
 * order on the calling thread, so the result is bit-identical for any
 * thread count (including the inline serial path).
 */
double parallelReduceSum(std::uint64_t begin, std::uint64_t end,
                         const RangeSum &chunkSum);

/**
 * Coarse task fan-out: runs body(i) for i in [0, count) with one task
 * per index (no kSerialCutoff — a task is assumed expensive, e.g. one
 * compile).  Same nesting/exception semantics as parallelFor().
 */
void parallelForTasks(std::uint64_t count,
                      const std::function<void(std::uint64_t)> &body);

/**
 * Cancel-aware task fan-out: like parallelForTasks(), but the first
 * task that throws requests cancellation on @p cancel, so sibling
 * tasks that poll the token (e.g. guarded compiles) unwind instead of
 * running to completion, and tasks not yet started are skipped once
 * the token has tripped.  The token may also be cancelled externally
 * to stop the whole batch; remaining tasks are then skipped without
 * an error — the caller inspects the token afterwards.
 *
 * The first exception is still rethrown on the calling thread after
 * the batch drains.
 */
void parallelForTasks(std::uint64_t count, const run::CancelToken &cancel,
                      const std::function<void(std::uint64_t)> &body);

/** True while the calling thread executes inside a parallel region. */
bool inParallelRegion();

/**
 * Marks the calling thread as being inside a parallel region for its
 * lifetime, so every nested parallelFor/parallelForTasks runs inline.
 *
 * Long-running service threads (the serve workers) use this: N workers
 * each handle an independent request, and without the marker each
 * request's inner parallelFor would serialize all N workers on the
 * shared fork-join pool's region lock.  Inline execution also keeps
 * per-request arithmetic identical to a single-threaded run (the
 * chunk grid is thread-count independent).
 *
 * **The nested-region rule** (why re-entrant parallel-for is safe, in
 * lock terms): the fork-join pool owns one region lock (run_mutex_ in
 * parallel.cpp) that serializes whole regions, and the only way to
 * deadlock on it is to call parallelFor() from a thread that already
 * holds it — i.e. from inside a chunk body.  The pool therefore sets a
 * thread-local in-region flag on every thread that executes chunks
 * (pool workers permanently, the calling thread for the span of its
 * region), and parallelFor consults the flag *before* touching the
 * lock: a nested call never acquires run_mutex_, it degrades to the
 * inline serial path on the spot.  ScopedInlineRegion is the same flag
 * raised manually, so a WorkerGroup thread makes every parallelFor in
 * its request inline by construction.  The flag is thread-local state,
 * not shared data — which is exactly why no capability annotation
 * appears on it: there is nothing two threads could race on, and
 * clang's thread-safety analysis (common/sync.hpp) verifies the
 * remaining, genuinely shared pool state.
 */
class ScopedInlineRegion
{
  public:
    ScopedInlineRegion();
    ~ScopedInlineRegion();

    ScopedInlineRegion(const ScopedInlineRegion &) = delete;
    ScopedInlineRegion &operator=(const ScopedInlineRegion &) = delete;

  private:
    bool previous_;
};

/**
 * A joinable group of long-lived service threads — the substrate for
 * daemons (serve workers) as the fork-join ThreadPool is for data
 * parallelism.
 *
 * start(n, body) launches n threads running body(worker_index); join()
 * (or destruction) waits for all of them.  The bodies own their
 * termination condition (e.g. a closed queue) — the group only
 * launches and joins.  The first exception to escape a body is
 * captured and rethrown from join(), so a crashing worker cannot die
 * silently.
 */
class WorkerGroup
{
  public:
    WorkerGroup() = default;
    ~WorkerGroup();

    WorkerGroup(const WorkerGroup &) = delete;
    WorkerGroup &operator=(const WorkerGroup &) = delete;

    /** Launches @p count threads running body(index).  May only be
     *  called on an idle group (fresh or joined). */
    void start(int count, const std::function<void(int)> &body);

    /** Waits for every thread; rethrows the first captured exception. */
    void join();

    /** Number of threads launched and not yet joined. */
    int size() const { return static_cast<int>(threads_.size()); }

  private:
    /** Owner-thread state: only start()/join()/size() touch it, and
     *  the group's contract is single-owner (start on an idle group). */
    std::vector<std::thread> threads_;

    sync::Mutex error_mutex_;
    std::exception_ptr error_ QAOA_GUARDED_BY(error_mutex_);
};

} // namespace qaoa::par

#endif // QAOA_COMMON_PARALLEL_HPP
