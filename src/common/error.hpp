/**
 * @file
 * Error-handling helpers: the error taxonomy, the structured status
 * types, the exception firewall, and the check/assert macros.
 *
 * Three layers (DESIGN.md §14):
 *
 *  1. **Taxonomy + status types.**  ErrorCode names the failure class
 *     (user error vs corrupt input vs environment vs violated
 *     invariant).  Status carries code + human detail + (for decode /
 *     framing failures) the byte offset where the input went wrong.
 *     StatusOr<T> is "a T or the Status explaining why not".  Both are
 *     [[nodiscard]]: dropping an error is a compile error under
 *     QAOA_WERROR (-Werror=unused-result).
 *
 *  2. **Structured exceptions.**  qaoa::Error is a std::runtime_error
 *     that carries its Status, so throw-based code keeps its shape
 *     while boundaries (serve error frames, tool exit codes) recover
 *     the code and offset instead of grepping what() strings.
 *     Two macros mirror the fatal/panic split recommended by the gem5
 *     style guide:
 *      - QAOA_CHECK:  user-facing precondition (bad configuration,
 *        invalid argument).  Throws std::runtime_error.
 *      - QAOA_ASSERT: internal invariant that should never fail
 *        regardless of input.  Throws std::logic_error so that a
 *        violated invariant is loud in both debug and release builds.
 *
 *  3. **Exception firewall.**  exceptionBoundary() /
 *     exceptionBoundaryCapture() / destructorBoundary() / toolMain()
 *     are the ONLY places in the tree where `catch (...)` is legal
 *     (invariant QE102, scripts/check_invariants.py): worker threads,
 *     response callbacks and each tool's main() run inside a boundary
 *     that converts escapees into a structured Status / exit code, and
 *     every other function is throw-transparent by construction.
 */

#ifndef QAOA_COMMON_ERROR_HPP
#define QAOA_COMMON_ERROR_HPP

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace qaoa {

namespace detail {

/** Builds the exception message including source location. */
inline std::string
formatError(const char *kind, const char *cond, const char *file, int line,
            const std::string &msg)
{
    std::ostringstream os;
    os << kind << " failed: (" << cond << ") at " << file << ":" << line;
    if (!msg.empty())
        os << " — " << msg;
    return os.str();
}

} // namespace detail

/**
 * Failure classes (DESIGN.md §14 taxonomy).  The split that matters
 * operationally: user errors are the caller's fault (fix the request),
 * malformed/truncated/unsupported describe untrusted input (reject the
 * payload, keep serving), environment errors are the machine's fault
 * (retry elsewhere), and internal errors are OUR fault (a violated
 * invariant — file a bug).
 */
enum class ErrorCode {
    Ok = 0,
    /** Bad configuration or request field (user error). */
    InvalidArgument,
    /** A named thing (file, cache key, device) does not exist. */
    NotFound,
    /** Untrusted input failed structural validation. */
    Malformed,
    /** Untrusted input ended mid-structure. */
    Truncated,
    /** Unknown version / kind / opcode (input from the future). */
    Unsupported,
    /** A cap was exceeded (frame size, queue depth, resource guard). */
    ResourceExhausted,
    /** OS-level I/O failure (environment error). */
    IoError,
    /** The operation was cancelled by its owner. */
    Cancelled,
    /** A deadline expired. */
    TimedOut,
    /** Violated invariant or escaped exception (our bug). */
    Internal,
    /** Clean end of a stream at a message boundary (not a failure,
     *  but not "a message was read" either — callers must dispatch). */
    EndOfStream,
};

/** Stable lowercase wire name ("ok", "malformed", "internal", ...). */
inline const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "ok";
      case ErrorCode::InvalidArgument: return "invalid_argument";
      case ErrorCode::NotFound: return "not_found";
      case ErrorCode::Malformed: return "malformed";
      case ErrorCode::Truncated: return "truncated";
      case ErrorCode::Unsupported: return "unsupported";
      case ErrorCode::ResourceExhausted: return "resource_exhausted";
      case ErrorCode::IoError: return "io_error";
      case ErrorCode::Cancelled: return "cancelled";
      case ErrorCode::TimedOut: return "timed_out";
      case ErrorCode::Internal: return "internal";
      case ErrorCode::EndOfStream: return "end_of_stream";
    }
    return "internal";
}

/**
 * The outcome of a fallible operation: an ErrorCode, a human-readable
 * detail, and — when the failure is positional (framing, qbin decode,
 * kv parse) — the byte offset where the input went wrong (-1 when not
 * applicable).  [[nodiscard]] so a dropped error is a build break.
 */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() = default;

    Status(ErrorCode code, std::string message, long long offset = -1)
        : code_(code), message_(std::move(message)), offset_(offset)
    {
    }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Byte offset of the failure in the input; -1 when not positional. */
    long long offset() const { return offset_; }

    /** "malformed: bad magic (at byte 4)" — code, detail, offset. */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        std::string out = errorCodeName(code_);
        if (!message_.empty()) {
            out += ": ";
            out += message_;
        }
        if (offset_ >= 0) {
            out += " (at byte ";
            out += std::to_string(offset_);
            out += ")";
        }
        return out;
    }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
    long long offset_ = -1;
};

/**
 * A T, or the Status explaining why there is no T.  The minimal
 * subset of absl::StatusOr the untrusted-input boundary needs: decode
 * APIs return StatusOr so "false" can no longer mean both "not found"
 * and "corrupt".
 */
template <typename T>
class [[nodiscard]] StatusOr
{
  public:
    /** Failure; @p status must not be ok. */
    StatusOr(Status status) : status_(std::move(status)) // NOLINT(*-explicit-*)
    {
        if (status_.ok())
            status_ = Status(ErrorCode::Internal,
                             "StatusOr constructed from an ok status");
    }

    /** Success. */
    StatusOr(T value) // NOLINT(*-explicit-*)
        : value_(std::move(value)), has_value_(true)
    {
    }

    bool ok() const { return has_value_; }
    const Status &status() const { return status_; }

    /** The held value; throws the Status as an Error when absent. */
    const T &value() const &;
    T &&value() &&;

  private:
    Status status_;
    T value_{};
    bool has_value_ = false;
};

/**
 * A std::runtime_error that carries its Status, so structured
 * boundaries (serve error frames, tool exit codes) recover the code
 * and byte offset without parsing what().  Throwing sites that
 * validate untrusted input (qbin Reader, kv parser, request decoding,
 * frame I/O) throw Error; generic QAOA_CHECK failures remain plain
 * runtime_errors and classify as InvalidArgument at the boundary.
 */
class Error : public std::runtime_error
{
  public:
    explicit Error(Status status)
        : std::runtime_error(status.toString()), status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }

  private:
    Status status_;
};

/** Throws Error with @p code, @p message and optional byte @p offset. */
[[noreturn]] inline void
raiseError(ErrorCode code, const std::string &message, long long offset = -1)
{
    throw Error(Status(code, message, offset));
}

template <typename T>
inline const T &
StatusOr<T>::value() const &
{
    if (!has_value_)
        throw Error(status_);
    return value_;
}

template <typename T>
inline T &&
StatusOr<T>::value() &&
{
    if (!has_value_)
        throw Error(status_);
    return std::move(value_);
}

/**
 * The exception firewall: runs @p fn inside the process's sanctioned
 * `catch (...)` and converts any escapee into a Status.  This is how a
 * worker thread, a response callback or a tool main turns "an
 * exception nobody expected" into a structured error frame or a
 * documented exit code instead of std::terminate().
 *
 * Classification: qaoa::Error keeps its carried Status; std::logic_error
 * (QAOA_ASSERT) is Internal; other std::exceptions are InvalidArgument
 * (the QAOA_CHECK class — a precondition the input failed); non-standard
 * exceptions are Internal.  @p name prefixes the detail so the report
 * says which crash domain caught it.
 */
template <typename Fn>
Status
exceptionBoundary(const char *name, Fn &&fn) noexcept
{
    try {
        std::forward<Fn>(fn)();
        return Status();
    } catch (const Error &e) {
        const Status &s = e.status();
        return Status(s.code(), std::string(name) + ": " + s.message(),
                      s.offset());
    } catch (const std::logic_error &e) {
        return Status(ErrorCode::Internal,
                      std::string(name) + ": " + e.what());
    } catch (const std::exception &e) {
        return Status(ErrorCode::InvalidArgument,
                      std::string(name) + ": " + e.what());
    } catch (...) {
        return Status(ErrorCode::Internal,
                      std::string(name) +
                          ": non-standard exception escaped");
    }
}

/**
 * Capture flavor for fork-join substrates that must re-throw the
 * ORIGINAL exception on the owning thread (ThreadPool, WorkerGroup):
 * returns nullptr on success, the captured exception otherwise.  The
 * exception object is preserved bit-for-bit — this boundary defers a
 * throw across threads, it never swallows one.
 */
template <typename Fn>
std::exception_ptr
exceptionBoundaryCapture(Fn &&fn) noexcept
{
    try {
        std::forward<Fn>(fn)();
        return nullptr;
    } catch (...) {
        return std::current_exception();
    }
}

/**
 * Destructor-context boundary: unwinding must never terminate(), so a
 * destructor that runs potentially-throwing cleanup (joining workers,
 * draining queues) wraps it here.  Returns false when an exception was
 * swallowed — callers that can report, should.
 */
template <typename Fn>
bool
destructorBoundary(const char *name, Fn &&fn) noexcept
{
    return exceptionBoundary(name, std::forward<Fn>(fn)).ok();
}

/** Exit code toolMain() returns when an exception escapes @p fn. */
inline constexpr int kExitFatal = 1;

/**
 * The tool-process crash domain: every tool's main() delegates its
 * body here (invariant QE105), so an escaped exception becomes the
 * documented fatal exit code (1) with a classified one-line report on
 * stderr — never an abort, never a silent zero.
 */
template <typename Fn>
int
toolMain(const char *name, Fn &&fn) noexcept
{
    int code = kExitFatal;
    const Status status =
        exceptionBoundary(name, [&] { code = fn(); });
    if (status.ok())
        return code;
    std::fprintf(stderr, "%s: fatal: %s\n", name,
                 status.toString().c_str());
    return kExitFatal;
}

} // namespace qaoa

/** Precondition check for user/config errors; throws std::runtime_error. */
#define QAOA_CHECK(cond, msg)                                                 \
    do {                                                                      \
        if (!(cond)) {                                                        \
            std::ostringstream qaoa_check_os_;                                \
            qaoa_check_os_ << msg;                                            \
            throw std::runtime_error(::qaoa::detail::formatError(             \
                "check", #cond, __FILE__, __LINE__, qaoa_check_os_.str()));   \
        }                                                                     \
    } while (0)

/** Internal invariant; throws std::logic_error when violated. */
#define QAOA_ASSERT(cond, msg)                                                \
    do {                                                                      \
        if (!(cond)) {                                                        \
            std::ostringstream qaoa_assert_os_;                               \
            qaoa_assert_os_ << msg;                                           \
            throw std::logic_error(::qaoa::detail::formatError(               \
                "assert", #cond, __FILE__, __LINE__, qaoa_assert_os_.str())); \
        }                                                                     \
    } while (0)

#endif // QAOA_COMMON_ERROR_HPP
