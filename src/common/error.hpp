/**
 * @file
 * Error-handling helpers.
 *
 * Two macros mirror the fatal/panic split recommended by the gem5 style
 * guide:
 *  - QAOA_CHECK:  user-facing precondition (bad configuration, invalid
 *    argument).  Throws std::runtime_error with a formatted message.
 *  - QAOA_ASSERT: internal invariant that should never fail regardless of
 *    input.  Throws std::logic_error so that a violated invariant is loud
 *    in both debug and release builds.
 */

#ifndef QAOA_COMMON_ERROR_HPP
#define QAOA_COMMON_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace qaoa {

namespace detail {

/** Builds the exception message including source location. */
inline std::string
formatError(const char *kind, const char *cond, const char *file, int line,
            const std::string &msg)
{
    std::ostringstream os;
    os << kind << " failed: (" << cond << ") at " << file << ":" << line;
    if (!msg.empty())
        os << " — " << msg;
    return os.str();
}

} // namespace detail

} // namespace qaoa

/** Precondition check for user/config errors; throws std::runtime_error. */
#define QAOA_CHECK(cond, msg)                                                 \
    do {                                                                      \
        if (!(cond)) {                                                        \
            std::ostringstream qaoa_check_os_;                                \
            qaoa_check_os_ << msg;                                            \
            throw std::runtime_error(::qaoa::detail::formatError(             \
                "check", #cond, __FILE__, __LINE__, qaoa_check_os_.str()));   \
        }                                                                     \
    } while (0)

/** Internal invariant; throws std::logic_error when violated. */
#define QAOA_ASSERT(cond, msg)                                                \
    do {                                                                      \
        if (!(cond)) {                                                        \
            std::ostringstream qaoa_assert_os_;                               \
            qaoa_assert_os_ << msg;                                           \
            throw std::logic_error(::qaoa::detail::formatError(               \
                "assert", #cond, __FILE__, __LINE__, qaoa_assert_os_.str())); \
        }                                                                     \
    } while (0)

#endif // QAOA_COMMON_ERROR_HPP
