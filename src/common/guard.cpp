#include "common/guard.hpp"

#include <string>

namespace qaoa::run {

void
RunGuard::checkAllocation(const char *what, std::uint64_t bytes) const
{
    if (bytes > limits_.max_statevector_bytes)
        throw ResourceExceededError(
            std::string(what) + " needs " + std::to_string(bytes) +
            " bytes, exceeding the guard limit of " +
            std::to_string(limits_.max_statevector_bytes) + " bytes");
}

} // namespace qaoa::run
