/**
 * @file
 * Crash-safe, durable filesystem helpers shared by everything that
 * persists state: optimizer checkpoints (opt/checkpoint.hpp) and the
 * serve compile cache (serve/cache.hpp).
 *
 * atomicWriteFile() is the one write path: the body goes to a
 * uniquely-named temp file (pid + a process-wide counter, so two
 * threads writing the same destination never share a temp file and the
 * loser of the final rename race still leaves a fully-written file in
 * place), the temp file is fsync'ed, rename(2) publishes it atomically,
 * and the parent directory is fsync'ed so the rename itself survives a
 * power cut.  A kill at any point leaves either the previous file or
 * the new one — never a torn mixture — plus at worst an orphaned
 * `<name>.tmp.<pid>.<seq>` that removeStaleTempFiles() sweeps on the
 * next startup.
 *
 * The try* variants return Status (IoError with strerror detail,
 * NotFound for a missing read target) and optionally surface the raw
 * errno so callers can branch on ENOSPC (emergency cache eviction) or
 * tag quarantine sidecars with the errno name.  The throwing wrappers
 * keep the original contract: std::runtime_error with the OS-level
 * detail — "rename failed: No space left on device" is actionable where
 * a bare "write failed" is not.
 *
 * Fault injection: every syscall on these paths is guarded by a
 * failpoint (fs.open / fs.write / fs.fsync / fs.rename / fs.dirsync /
 * fs.read — see common/failpoint.hpp), which is how the fs unit tests
 * and the crash-consistency harness reach the error branches.  QS007
 * keeps raw fsync/rename calls out of the rest of the tree so this
 * file stays the single durability authority.
 */

#ifndef QAOA_COMMON_FS_HPP
#define QAOA_COMMON_FS_HPP

#include <string>

#include "common/error.hpp"

namespace qaoa::fs {

/** "<prefix>: <strerror(errno)>" using the calling thread's errno. */
[[nodiscard]] std::string errnoDetail(const std::string &prefix);

/**
 * Atomically and durably replaces @p path with @p body: unique temp
 * file, fsync(temp), rename, fsync(parent directory).
 *
 * On failure the temp file is removed — except after a short write
 * (injected or real), where the torn temp is left behind exactly as a
 * crash would leave it, for removeStaleTempFiles() to sweep.  A
 * dirsync failure reports IoError even though the file is already
 * visible: its durability is not yet guaranteed.
 *
 * @param errno_out when non-null receives the failing errno (0 on
 *        success) so callers can branch on ENOSPC and friends.
 */
[[nodiscard]] Status tryAtomicWriteFile(const std::string &path,
                                        const std::string &body,
                                        int *errno_out = nullptr);

/**
 * Throwing wrapper over tryAtomicWriteFile() that retries transient
 * failures with seeded backoff.
 *
 * @throws std::runtime_error with strerror(errno) detail when the
 *         write keeps failing.
 */
void atomicWriteFile(const std::string &path, const std::string &body);

/**
 * Reads the whole file into @p out.
 *
 * @return Ok on success; NotFound when the file does not exist;
 *         IoError (with @p errno_out set when non-null) on a read
 *         error of an existing file — the two must stay distinct so
 *         cache reload can quarantine unreadable entries instead of
 *         skipping them as absent.
 */
[[nodiscard]] Status tryReadFile(const std::string &path, std::string &out,
                                 int *errno_out = nullptr);

/**
 * Throwing wrapper over tryReadFile().
 *
 * @return true on success; false when the file does not exist.
 * @throws std::runtime_error with errno detail on a read error of an
 *         existing file.
 */
[[nodiscard]] bool readFile(const std::string &path, std::string &out);

/**
 * rename(2) behind the QS007 gate: the only sanctioned way to move a
 * file outside this translation unit (quarantine sidecars, legacy
 * retirement).  Not durable — no directory fsync — and deliberately
 * so: callers that need durability publish through atomicWriteFile().
 */
[[nodiscard]] Status renameFile(const std::string &from,
                                const std::string &to);

/**
 * Deletes `*.tmp.*` orphans that a killed atomicWriteFile() may have
 * left in @p dir.  Missing directory is fine (returns 0).
 *
 * @return number of files removed.
 */
int removeStaleTempFiles(const std::string &dir);

} // namespace qaoa::fs

#endif // QAOA_COMMON_FS_HPP
