/**
 * @file
 * Crash-safe filesystem helpers shared by everything that persists
 * state: optimizer checkpoints (opt/checkpoint.hpp) and the serve
 * compile cache (serve/cache.hpp).
 *
 * atomicWriteFile() is the one write path: the body goes to a
 * uniquely-named temp file (pid + a process-wide counter, so two
 * threads writing the same destination never share a temp file and the
 * loser of the final rename race still leaves a fully-written file in
 * place), then rename(2) publishes it atomically.  A kill at any point
 * leaves either the previous file or the new one — never a torn
 * mixture — plus at worst an orphaned `<name>.tmp.<pid>.<seq>` that
 * removeStaleTempFiles() sweeps on the next startup.
 *
 * All failures throw std::runtime_error with the OS-level detail
 * (strerror(errno)) — "rename failed: No space left on device" is
 * actionable where a bare "write failed" is not.
 */

#ifndef QAOA_COMMON_FS_HPP
#define QAOA_COMMON_FS_HPP

#include <string>

namespace qaoa::fs {

/** "<prefix>: <strerror(errno)>" using the calling thread's errno. */
[[nodiscard]] std::string errnoDetail(const std::string &prefix);

/**
 * Atomically replaces @p path with @p body (unique temp file +
 * rename), retrying transient failures with seeded backoff.
 *
 * @throws std::runtime_error with strerror(errno) detail when the
 *         write keeps failing.
 */
void atomicWriteFile(const std::string &path, const std::string &body);

/**
 * Reads the whole file into @p out.
 *
 * @return true on success; false when the file does not exist.
 * @throws std::runtime_error with errno detail on a read error of an
 *         existing file.
 */
[[nodiscard]] bool readFile(const std::string &path, std::string &out);

/**
 * Deletes `*.tmp.*` orphans that a killed atomicWriteFile() may have
 * left in @p dir.  Missing directory is fine (returns 0).
 *
 * @return number of files removed.
 */
int removeStaleTempFiles(const std::string &dir);

} // namespace qaoa::fs

#endif // QAOA_COMMON_FS_HPP
