#include "common/deadline.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"

namespace qaoa::run {

std::string
stageOutcomeName(StageOutcome o)
{
    switch (o) {
      case StageOutcome::Completed: return "completed";
      case StageOutcome::Failed: return "failed";
      case StageOutcome::TimedOut: return "timed-out";
      case StageOutcome::Cancelled: return "cancelled";
      case StageOutcome::GuardTripped: return "guard-tripped";
    }
    QAOA_ASSERT(false, "unknown stage outcome");
    return {};
}

double
backoffDelayMs(const RetryOptions &opts, int attempt, Rng &rng)
{
    QAOA_CHECK(attempt >= 1, "backoff attempt must be 1-based");
    double delay = opts.base_delay_ms;
    for (int i = 1; i < attempt; ++i)
        delay *= opts.multiplier;
    delay = std::min(delay, opts.max_delay_ms);
    const double j = std::clamp(opts.jitter, 0.0, 1.0);
    if (j > 0.0)
        delay *= rng.uniformReal(1.0 - j, 1.0 + j);
    return std::max(delay, 0.0);
}

void
cancellableSleepMs(double delay_ms, const CancelToken &token)
{
    using namespace std::chrono;
    const auto until =
        steady_clock::now() +
        duration_cast<steady_clock::duration>(
            duration<double, std::milli>(std::max(delay_ms, 0.0)));
    for (;;) {
        token.throwIfCancelled("backoff sleep");
        const auto now = steady_clock::now();
        if (now >= until)
            return;
        // Sleep in short slices so a cancel lands within a few ms.
        const auto slice = std::min<steady_clock::duration>(
            until - now, milliseconds(2));
        std::this_thread::sleep_for(slice);
    }
}

} // namespace qaoa::run
