#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace qaoa {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    QAOA_CHECK(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    QAOA_CHECK(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, expected "
                          << headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::num(long long v)
{
    return std::to_string(v);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total >= 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace qaoa
