#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qaoa {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
minOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

void
Accumulator::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double
ratioOfMeans(const std::vector<double> &num, const std::vector<double> &den)
{
    double d = mean(den);
    if (d == 0.0)
        return 0.0;
    return mean(num) / d;
}

} // namespace qaoa
