/**
 * @file
 * Aligned plain-text table printer for benchmark output.
 *
 * Every figure/table bench prints its rows through this class so the
 * regenerated artifacts share one consistent, diff-friendly format.
 */

#ifndef QAOA_COMMON_TABLE_HPP
#define QAOA_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace qaoa {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"graph", "depth ratio", "gate ratio"});
 *   t.addRow({"ER p=0.1", Table::num(0.88), Table::num(0.79)});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Formats a double with the given precision (default 3 decimals). */
    static std::string num(double v, int precision = 3);

    /** Formats an integer cell. */
    static std::string num(long long v);

    /** Renders the table (header, rule, rows) to the stream. */
    void print(std::ostream &os) const;

    /** Renders as comma-separated values (for scripting). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace qaoa

#endif // QAOA_COMMON_TABLE_HPP
