/**
 * @file
 * Wall-clock stopwatch for compile-time measurements.
 */

#ifndef QAOA_COMMON_STOPWATCH_HPP
#define QAOA_COMMON_STOPWATCH_HPP

#include <chrono>

namespace qaoa {

/**
 * Monotonic wall-clock stopwatch.
 *
 * Starts on construction; seconds() reports the time elapsed since
 * construction or the last reset().
 */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restarts the measurement window. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed wall-clock time in seconds. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed wall-clock time in milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace qaoa

#endif // QAOA_COMMON_STOPWATCH_HPP
