#include "common/fs.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/sync.hpp"

namespace qaoa::fs {

namespace {

/** Process-wide temp-name disambiguator (two concurrent writers to the
 *  same destination must never share a temp file). */
std::atomic<std::uint64_t> g_temp_seq{0};

std::string
tempName(const std::string &path)
{
    std::ostringstream os;
    os << path << ".tmp."
#ifdef _WIN32
       << 0
#else
       << ::getpid()
#endif
       << "." << g_temp_seq.fetch_add(1, std::memory_order_relaxed);
    return os.str();
}

/** Directory containing @p path ("." for a bare filename). */
std::string
parentDir(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/** Builds the IoError Status for a failed step and records the errno. */
Status
ioFailure(int err, const std::string &what, int *errno_out)
{
    if (errno_out != nullptr)
        *errno_out = err;
    errno = err;
    return {ErrorCode::IoError, errnoDetail(what)};
}

#ifndef _WIN32

/** write(2) until @p size bytes are on the fd, retrying EINTR. */
[[nodiscard]] bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t wrote = ::write(fd, data, size);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += wrote;
        size -= static_cast<std::size_t>(wrote);
    }
    return true;
}

/** fsync(2) retrying EINTR. */
[[nodiscard]] bool
syncFd(int fd)
{
    while (::fsync(fd) != 0) {
        if (errno != EINTR)
            return false;
    }
    return true;
}

Status
writeTempDurably(const std::string &tmp, const std::string &body,
                 int *errno_out)
{
    if (const auto fp = failpoint::poll("fs.open"); fp.fires())
        return ioFailure(fp.error_number,
                         "cannot open temp file " + tmp, errno_out);
    errno = 0;
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd < 0)
        return ioFailure(errno, "cannot open temp file " + tmp, errno_out);

    // The failpoint sits mid-body so an 'abort' action leaves a torn
    // temp file on disk — the exact artifact a power cut mid-write
    // produces, which reload/sweep must tolerate.
    const std::size_t half = body.size() / 2;
    if (!writeAll(fd, body.data(), half)) {
        const int err = errno;
        ::close(fd);
        std::remove(tmp.c_str());
        return ioFailure(err, "short write to temp file " + tmp, errno_out);
    }
    if (const auto fp = failpoint::poll("fs.write"); fp.fires()) {
        ::close(fd);
        if (fp.action == failpoint::Action::ShortWrite)
            // Leave the torn temp behind, as a crashed writer would.
            return ioFailure(fp.error_number,
                             "short write to temp file " + tmp, errno_out);
        std::remove(tmp.c_str());
        return ioFailure(fp.error_number,
                         "cannot write temp file " + tmp, errno_out);
    }
    if (!writeAll(fd, body.data() + half, body.size() - half)) {
        const int err = errno;
        ::close(fd);
        std::remove(tmp.c_str());
        return ioFailure(err, "short write to temp file " + tmp, errno_out);
    }

    // Durability step 1: the temp file's bytes must be on stable
    // storage before the rename can safely publish them.
    if (const auto fp = failpoint::poll("fs.fsync"); fp.fires()) {
        ::close(fd);
        std::remove(tmp.c_str());
        return ioFailure(fp.error_number, "cannot fsync temp file " + tmp,
                         errno_out);
    }
    if (!syncFd(fd)) {
        const int err = errno;
        ::close(fd);
        std::remove(tmp.c_str());
        return ioFailure(err, "cannot fsync temp file " + tmp, errno_out);
    }
    if (::close(fd) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        return ioFailure(err, "cannot close temp file " + tmp, errno_out);
    }
    return {};
}

Status
syncParentDir(const std::string &path, int *errno_out)
{
    // Durability step 2: the rename is a directory mutation; without
    // fsyncing the directory a power cut can roll it back, resurrecting
    // the old file (or nothing) after we reported success.
    const std::string dir = parentDir(path);
    if (const auto fp = failpoint::poll("fs.dirsync"); fp.fires())
        return ioFailure(fp.error_number, "cannot fsync directory " + dir,
                         errno_out);
    errno = 0;
    const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dirfd < 0)
        return ioFailure(errno, "cannot open directory " + dir, errno_out);
    if (!syncFd(dirfd)) {
        const int err = errno;
        ::close(dirfd);
        return ioFailure(err, "cannot fsync directory " + dir, errno_out);
    }
    ::close(dirfd);
    return {};
}

#else // _WIN32

Status
writeTempDurably(const std::string &tmp, const std::string &body,
                 int *errno_out)
{
    errno = 0;
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good())
        return ioFailure(errno, "cannot open temp file " + tmp, errno_out);
    out << body;
    out.flush();
    if (!out.good()) {
        const int err = errno != 0 ? errno : EIO;
        out.close();
        std::remove(tmp.c_str());
        return ioFailure(err, "short write to temp file " + tmp, errno_out);
    }
    return {};
}

Status
syncParentDir(const std::string &, int *)
{
    return {};
}

#endif // _WIN32

} // namespace

std::string
errnoDetail(const std::string &prefix)
{
    const int err = errno;
    std::string out = prefix;
    out += ": ";
    if (err != 0) {
        // strerror may return a pointer into static storage; serialize
        // callers and copy the text out before releasing the lock.
        static sync::Mutex strerror_mutex;
        sync::MutexLock lock(strerror_mutex);
        out += std::strerror(err); // NOLINT(concurrency-mt-unsafe)
    } else {
        out += "unknown error";
    }
    return out;
}

Status
tryAtomicWriteFile(const std::string &path, const std::string &body,
                   int *errno_out)
{
    if (errno_out != nullptr)
        *errno_out = 0;
    const std::string tmp = tempName(path);
    if (Status st = writeTempDurably(tmp, body, errno_out); !st.ok())
        return st;

    if (const auto fp = failpoint::poll("fs.rename"); fp.fires()) {
        std::remove(tmp.c_str());
        return ioFailure(fp.error_number,
                         "cannot rename " + tmp + " into place at " + path,
                         errno_out);
    }
    errno = 0;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        return ioFailure(err,
                         "cannot rename " + tmp + " into place at " + path,
                         errno_out);
    }

    // The file is visible from here on; a dirsync failure is still an
    // error (durability not yet guaranteed) but must not unlink it.
    return syncParentDir(path, errno_out);
}

void
atomicWriteFile(const std::string &path, const std::string &body)
{
    run::RetryOptions retry;
    run::retryWithBackoff(
        [&]() {
            if (Status st = tryAtomicWriteFile(path, body); !st.ok())
                throw std::runtime_error(st.message());
        },
        retry);
}

Status
tryReadFile(const std::string &path, std::string &out, int *errno_out)
{
    if (errno_out != nullptr)
        *errno_out = 0;
    if (const auto fp = failpoint::poll("fs.read"); fp.fires())
        return ioFailure(fp.error_number, "cannot read " + path, errno_out);
    errno = 0;
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        const int err = errno;
        if (err == ENOENT || !std::filesystem::exists(path))
            return {ErrorCode::NotFound, "no such file: " + path};
        return ioFailure(err != 0 ? err : EIO, "cannot open " + path,
                         errno_out);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
        const int err = errno;
        return ioFailure(err != 0 ? err : EIO, "read error on " + path,
                         errno_out);
    }
    out = buf.str();
    return {};
}

bool
readFile(const std::string &path, std::string &out)
{
    const Status st = tryReadFile(path, out);
    if (st.ok())
        return true;
    if (st.code() == ErrorCode::NotFound)
        return false;
    throw std::runtime_error(st.message());
}

Status
renameFile(const std::string &from, const std::string &to)
{
    errno = 0;
    if (std::rename(from.c_str(), to.c_str()) != 0)
        return {ErrorCode::IoError,
                errnoDetail("cannot rename " + from + " to " + to)};
    return {};
}

int
removeStaleTempFiles(const std::string &dir)
{
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec))
        return 0;
    int removed = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") == std::string::npos)
            continue;
        std::error_code rm_ec;
        if (std::filesystem::remove(entry.path(), rm_ec))
            ++removed;
    }
    return removed;
}

} // namespace qaoa::fs
