#include "common/fs.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/deadline.hpp"
#include "common/error.hpp"
#include "common/sync.hpp"

namespace qaoa::fs {

namespace {

/** Process-wide temp-name disambiguator (two concurrent writers to the
 *  same destination must never share a temp file). */
std::atomic<std::uint64_t> g_temp_seq{0};

std::string
tempName(const std::string &path)
{
    std::ostringstream os;
    os << path << ".tmp."
#ifdef _WIN32
       << 0
#else
       << ::getpid()
#endif
       << "." << g_temp_seq.fetch_add(1, std::memory_order_relaxed);
    return os.str();
}

} // namespace

std::string
errnoDetail(const std::string &prefix)
{
    const int err = errno;
    std::string out = prefix;
    out += ": ";
    if (err != 0) {
        // strerror may return a pointer into static storage; serialize
        // callers and copy the text out before releasing the lock.
        static sync::Mutex strerror_mutex;
        sync::MutexLock lock(strerror_mutex);
        out += std::strerror(err); // NOLINT(concurrency-mt-unsafe)
    } else {
        out += "unknown error";
    }
    return out;
}

void
atomicWriteFile(const std::string &path, const std::string &body)
{
    run::RetryOptions retry;
    run::retryWithBackoff(
        [&]() {
            const std::string tmp = tempName(path);
            {
                errno = 0;
                std::ofstream out(tmp,
                                  std::ios::binary | std::ios::trunc);
                if (!out.good()) {
                    throw std::runtime_error(errnoDetail(
                        "cannot open temp file " + tmp + " for " + path));
                }
                out << body;
                out.flush();
                if (!out.good()) {
                    const std::string detail =
                        errnoDetail("short write to temp file " + tmp);
                    out.close();
                    std::remove(tmp.c_str());
                    throw std::runtime_error(detail);
                }
            }
            errno = 0;
            if (std::rename(tmp.c_str(), path.c_str()) != 0) {
                const std::string detail = errnoDetail(
                    "cannot rename " + tmp + " into place at " + path);
                std::remove(tmp.c_str());
                throw std::runtime_error(detail);
            }
        },
        retry);
}

bool
readFile(const std::string &path, std::string &out)
{
    errno = 0;
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        if (errno == ENOENT || !std::filesystem::exists(path))
            return false;
        throw std::runtime_error(errnoDetail("cannot open " + path));
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    QAOA_CHECK(!in.bad(), "read error on " << path);
    out = buf.str();
    return true;
}

int
removeStaleTempFiles(const std::string &dir)
{
    std::error_code ec;
    if (!std::filesystem::is_directory(dir, ec))
        return 0;
    int removed = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") == std::string::npos)
            continue;
        std::error_code rm_ec;
        if (std::filesystem::remove(entry.path(), rm_ec))
            ++removed;
    }
    return removed;
}

} // namespace qaoa::fs
