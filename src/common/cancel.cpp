#include "common/cancel.hpp"

#include <atomic>

namespace qaoa::run {

/**
 * Shared cancellation state.  `flag` is the sticky cancelled bit;
 * `fuse` (when >= 0) counts down once per poll and raises the flag on
 * reaching zero; `parent` chains child tokens to their ancestors.
 *
 * Lock-free by design: tokens are polled from compile hot loops, so
 * the whole structure is relaxed atomics — there is no mutex here to
 * annotate, and nothing for the thread-safety analysis to check.  The
 * only ordering that matters is "a cancel eventually becomes visible",
 * which relaxed stores satisfy; the fuse may overshoot by a few polls
 * under contention, which is harmless (it exists to bound test time,
 * not to count precisely).
 */
struct CancelToken::State
{
    std::atomic<bool> flag{false};
    std::atomic<std::int64_t> fuse{-1}; ///< -1 = no fuse armed.
    std::shared_ptr<State> parent;

    /** One poll: checks the flag and burns one unit of the fuse. */
    bool
    tripped()
    {
        if (flag.load(std::memory_order_relaxed))
            return true;
        if (fuse.load(std::memory_order_relaxed) >= 0 &&
            fuse.fetch_sub(1, std::memory_order_relaxed) <= 0) {
            flag.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    }
};

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

CancelToken::CancelToken(std::shared_ptr<State> state)
    : state_(std::move(state))
{
}

CancelToken
CancelToken::child() const
{
    auto child_state = std::make_shared<State>();
    child_state->parent = state_;
    return CancelToken(std::move(child_state));
}

void
CancelToken::requestCancel() const
{
    state_->flag.store(true, std::memory_order_relaxed);
}

void
CancelToken::cancelAfter(std::uint64_t polls) const
{
    state_->fuse.store(static_cast<std::int64_t>(polls),
                       std::memory_order_relaxed);
}

bool
CancelToken::cancelled() const
{
    for (State *s = state_.get(); s != nullptr; s = s->parent.get())
        if (s->tripped())
            return true;
    return false;
}

void
CancelToken::throwIfCancelled(const char *where) const
{
    if (cancelled())
        throw CancelledError(std::string("cancelled during ") + where);
}

} // namespace qaoa::run
