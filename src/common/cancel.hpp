/**
 * @file
 * Cooperative cancellation for long-running compile stages.
 *
 * A CancelToken is a cheap, copyable handle to shared cancellation
 * state.  Work loops poll it (directly or through run::RunGuard) at
 * iteration boundaries and unwind with CancelledError when someone
 * requested a stop — no thread is ever killed, so invariants hold and
 * partially built circuits are simply discarded.
 *
 * Tokens form a hierarchy: child() derives a token that trips when
 * either itself or any ancestor is cancelled, which is how one
 * compileSeries-level cancel fans out to every in-flight instance
 * while a single failing instance can cancel only its own subtree.
 *
 * For deterministic tests, cancelAfter(n) arms a poll-count fuse: the
 * n-th poll of this token (not wall-clock time) trips it, so a
 * "cancel mid-compile" test is bit-reproducible.
 */

#ifndef QAOA_COMMON_CANCEL_HPP
#define QAOA_COMMON_CANCEL_HPP

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace qaoa::run {

/** Thrown by poll/throwIfCancelled when a stop was requested. */
class CancelledError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Copyable handle to shared, hierarchical cancellation state.
 *
 * All operations are thread-safe; cancelled() is a couple of relaxed
 * atomic loads per hierarchy level, cheap enough for hot loops.
 */
class CancelToken
{
  public:
    /** Fresh root token (not cancelled). */
    CancelToken();

    /** Derives a child: trips when it or any ancestor is cancelled. */
    CancelToken child() const;

    /** Requests cancellation of this token and its descendants. */
    void requestCancel() const;

    /**
     * Arms a deterministic fuse: the token survives @p polls further
     * cancelled() checks and trips on the next one (0 trips the very
     * next poll).  Intended for tests — cancellation points become
     * reproducible instead of racing a timer.
     */
    void cancelAfter(std::uint64_t polls) const;

    /** True when this token or an ancestor was cancelled.  Counts as
     *  one poll against a cancelAfter() fuse. */
    bool cancelled() const;

    /** Throws CancelledError mentioning @p where when cancelled. */
    void throwIfCancelled(const char *where) const;

  private:
    struct State;
    explicit CancelToken(std::shared_ptr<State> state);

    std::shared_ptr<State> state_;
};

} // namespace qaoa::run

#endif // QAOA_COMMON_CANCEL_HPP
