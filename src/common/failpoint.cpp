#include "common/failpoint.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>

#include "common/rng.hpp"
#include "common/sync.hpp"

namespace qaoa::failpoint {

namespace {

/**
 * The failpoint catalogue: every injectable site in the codebase, one
 * entry per poll() call.  QE106 enforces the bijection — a poll of an
 * unlisted name, a listed name that is never polled, a duplicate list
 * entry, or two poll sites sharing a name all fail the invariant gate.
 */
const char *const kFailpointCatalogue[] = {
    "cache.evict",       // serve/cache.cpp: before a policy eviction unlinks
    "cache.persist",     // serve/cache.cpp: before an entry is written out
    "cache.reload",      // serve/cache.cpp: per entry during loadFromDir
    "cache.scrub",       // serve/cache.cpp: per entry during a scrub pass
    "checkpoint.load",   // opt/checkpoint.cpp: before reading a checkpoint
    "checkpoint.save",   // opt/checkpoint.cpp: before persisting a checkpoint
    "fs.dirsync",        // common/fs.cpp: before fsyncing the parent dir
    "fs.fsync",          // common/fs.cpp: before fsyncing the temp file
    "fs.open",           // common/fs.cpp: before creating the temp file
    "fs.read",           // common/fs.cpp: before reading a file
    "fs.rename",         // common/fs.cpp: before the publishing rename
    "fs.write",          // common/fs.cpp: mid-body, so aborts leave torn temps
    "serve.frame_read",  // serve/protocol.cpp: before reading a frame header
    "serve.frame_write", // serve/protocol.cpp: before writing a frame
};

/** One armed failpoint's action, trigger and bookkeeping. */
struct ArmedPoint {
    Action action = Action::None;
    int error_number = 0;
    std::uint64_t hit = 0;        ///< fire on exactly this evaluation (1-based)
    std::uint64_t from = 0;       ///< fire on every evaluation >= this
    double probability = -1.0;    ///< fire with this chance when >= 0
    std::uint64_t seed = 0;       ///< seed for the probability stream
    std::uint64_t hits = 0;       ///< evaluations seen so far
    std::uint64_t fired = 0;      ///< evaluations that injected a fault
    std::string spec;             ///< the entry text this was armed from
    std::unique_ptr<Rng> rng;     ///< lazily built for probability triggers
};

struct Registry {
    sync::Mutex mutex;
    std::map<std::string, ArmedPoint> points QAOA_GUARDED_BY(mutex);
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

[[nodiscard]] bool
isKnownName(const std::string &name)
{
    for (const char *known : kFailpointCatalogue)
        if (name == known)
            return true;
    return false;
}

/** Errno vocabulary accepted in specs and used for sidecar names. */
struct ErrnoEntry {
    const char *name;
    int value;
};

const ErrnoEntry kErrnoTable[] = {
    {"EACCES", EACCES}, {"EAGAIN", EAGAIN}, {"EBADF", EBADF},
    {"EEXIST", EEXIST}, {"EINTR", EINTR},   {"EIO", EIO},
    {"EMFILE", EMFILE}, {"ENOENT", ENOENT}, {"ENOSPC", ENOSPC},
    {"EPIPE", EPIPE},   {"EROFS", EROFS},
};

[[nodiscard]] Status
badSpec(const std::string &entry, const std::string &why)
{
    return {ErrorCode::InvalidArgument,
            "failpoint spec '" + entry + "': " + why};
}

[[nodiscard]] std::string
trimmed(const std::string &text)
{
    const auto begin = text.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    const auto end = text.find_last_not_of(" \t");
    return text.substr(begin, end - begin + 1);
}

[[nodiscard]] bool
parseUint(const std::string &text, std::uint64_t &out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    errno = 0;
    out = std::strtoull(text.c_str(), nullptr, 10);
    return errno == 0;
}

/** Parses one 'name=action[@triggers]' entry into (name, point). */
[[nodiscard]] Status
parseEntry(const std::string &entry, std::uint64_t default_seed,
           std::string &name, ArmedPoint &point)
{
    const auto eq = entry.find('=');
    if (eq == std::string::npos)
        return badSpec(entry, "expected name=action");
    name = trimmed(entry.substr(0, eq));
    if (!isKnownName(name)) {
        std::string known;
        for (const char *n : kFailpointCatalogue) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        return badSpec(entry,
                       "unknown failpoint '" + name + "' (known: " + known +
                           ")");
    }

    std::string action_text = trimmed(entry.substr(eq + 1));
    std::string trigger_text;
    if (const auto at = action_text.find('@'); at != std::string::npos) {
        trigger_text = action_text.substr(at + 1);
        action_text = trimmed(action_text.substr(0, at));
    }

    point = ArmedPoint{};
    point.seed = default_seed;
    point.spec = entry;
    if (action_text == "abort") {
        point.action = Action::Abort;
    } else if (action_text == "short") {
        point.action = Action::ShortWrite;
        point.error_number = EIO;
    } else if (action_text == "off") {
        point.action = Action::None;
    } else if (action_text.rfind("errno:", 0) == 0) {
        point.action = Action::ReturnErrno;
        const std::string token = trimmed(action_text.substr(6));
        point.error_number = errnoFromToken(token);
        if (point.error_number == 0)
            return badSpec(entry, "unknown errno token '" + token + "'");
    } else {
        return badSpec(entry, "unknown action '" + action_text +
                                  "' (want errno:E, short, abort, off)");
    }

    std::istringstream triggers(trigger_text);
    std::string trigger;
    while (std::getline(triggers, trigger, ',')) {
        trigger = trimmed(trigger);
        if (trigger.empty())
            continue;
        const auto teq = trigger.find('=');
        if (teq == std::string::npos)
            return badSpec(entry, "malformed trigger '" + trigger + "'");
        const std::string key = trigger.substr(0, teq);
        const std::string value = trigger.substr(teq + 1);
        if (key == "hit" || key == "from") {
            std::uint64_t n = 0;
            if (!parseUint(value, n) || n == 0)
                return badSpec(entry, "trigger '" + key +
                                          "' wants a positive integer");
            (key == "hit" ? point.hit : point.from) = n;
        } else if (key == "p") {
            char *end = nullptr;
            const double p = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0)
                return badSpec(entry, "trigger 'p' wants a number in [0,1]");
            point.probability = p;
        } else if (key == "seed") {
            if (!parseUint(value, point.seed))
                return badSpec(entry, "trigger 'seed' wants an integer");
        } else {
            return badSpec(entry, "unknown trigger '" + key +
                                      "' (want hit=, from=, p=, seed=)");
        }
    }
    return {};
}

} // namespace

namespace detail {

std::atomic<bool> g_armed{false};

Fire
evaluate(const char *name)
{
    Registry &reg = registry();
    sync::MutexLock lock(reg.mutex);
    const auto it = reg.points.find(name);
    if (it == reg.points.end())
        return {};
    ArmedPoint &point = it->second;
    ++point.hits;
    bool fire = true;
    if (point.hit != 0)
        fire = point.hits == point.hit;
    else if (point.from != 0)
        fire = point.hits >= point.from;
    if (fire && point.probability >= 0.0) {
        if (!point.rng)
            point.rng = std::make_unique<Rng>(point.seed);
        fire = point.rng->uniformReal(0.0, 1.0) < point.probability;
    }
    if (!fire)
        return {};
    ++point.fired;
    if (point.action == Action::Abort) {
        // Power-cut simulation: no stream flushing, no atexit handlers,
        // no destructors — the harness asserts recovery from exactly
        // the on-disk state this instant leaves behind.
        std::_Exit(kAbortExitCode);
    }
    return {point.action, point.error_number};
}

} // namespace detail

Status
armFromSpec(const std::string &spec, std::uint64_t default_seed)
{
    // Parse the whole spec before touching the registry, so a bad entry
    // cannot leave a half-armed state.
    std::vector<std::pair<std::string, ArmedPoint>> parsed;
    std::istringstream entries(spec);
    std::string entry;
    while (std::getline(entries, entry, ';')) {
        entry = trimmed(entry);
        if (entry.empty())
            continue;
        std::string name;
        ArmedPoint point;
        if (Status st = parseEntry(entry, default_seed, name, point);
            !st.ok())
            return st;
        parsed.emplace_back(name, std::move(point));
    }

    Registry &reg = registry();
    sync::MutexLock lock(reg.mutex);
    for (auto &[name, point] : parsed) {
        if (point.action == Action::None)
            reg.points.erase(name);
        else
            reg.points[name] = std::move(point);
    }
    detail::g_armed.store(!reg.points.empty(), std::memory_order_relaxed);
    return {};
}

Status
armFromEnv()
{
    // NOLINTBEGIN(concurrency-mt-unsafe) — read once during startup,
    // before any worker thread exists.
    const char *spec = std::getenv("QAOA_FAILPOINTS");
    const char *seed_text = std::getenv("QAOA_FAILPOINT_SEED");
    // NOLINTEND(concurrency-mt-unsafe)
    if (spec == nullptr || *spec == '\0')
        return {};
    std::uint64_t seed = 0;
    if (seed_text != nullptr && *seed_text != '\0' &&
        !parseUint(seed_text, seed))
        return {ErrorCode::InvalidArgument,
                std::string("QAOA_FAILPOINT_SEED: not an integer: ") +
                    seed_text};
    return armFromSpec(spec, seed);
}

void
disarmAll()
{
    Registry &reg = registry();
    sync::MutexLock lock(reg.mutex);
    reg.points.clear();
    detail::g_armed.store(false, std::memory_order_relaxed);
}

std::vector<std::string>
armedList()
{
    Registry &reg = registry();
    sync::MutexLock lock(reg.mutex);
    std::vector<std::string> out;
    out.reserve(reg.points.size());
    for (const auto &[name, point] : reg.points) {
        std::ostringstream line;
        line << point.spec << " hits=" << point.hits
             << " fired=" << point.fired;
        out.push_back(line.str());
    }
    return out;
}

std::vector<std::string>
catalogue()
{
    std::vector<std::string> out(std::begin(kFailpointCatalogue),
                                 std::end(kFailpointCatalogue));
    std::sort(out.begin(), out.end());
    return out;
}

int
errnoFromToken(const std::string &token)
{
    std::string upper = token;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    for (const ErrnoEntry &e : kErrnoTable)
        if (upper == e.name)
            return e.value;
    std::uint64_t numeric = 0;
    if (parseUint(token, numeric) && numeric > 0 && numeric < 4096)
        return static_cast<int>(numeric);
    return 0;
}

std::string
errnoShortName(int error_number)
{
    for (const ErrnoEntry &e : kErrnoTable) {
        if (error_number == e.value) {
            std::string lower = e.name;
            std::transform(lower.begin(), lower.end(), lower.begin(),
                           [](unsigned char c) { return std::tolower(c); });
            return lower;
        }
    }
    return "e" + std::to_string(error_number);
}

} // namespace qaoa::failpoint
