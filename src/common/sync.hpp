/**
 * @file
 * The project's one synchronization layer: std::mutex /
 * std::condition_variable / lock guards wrapped with Clang Thread
 * Safety Analysis capability attributes.
 *
 * Every mutex in the codebase is a sync::Mutex and every lock a
 * sync::MutexLock (enforced by scripts/check_invariants.py rule QS001),
 * so on clang builds (-Werror=thread-safety, see CMakeLists.txt) the
 * compiler proves lock discipline on every translation unit:
 *
 *  - a field marked QAOA_GUARDED_BY(mutex_) cannot be read or written
 *    without holding mutex_;
 *  - a helper marked QAOA_REQUIRES(mutex_) cannot be called without it
 *    (the *Locked() naming convention becomes compiler-checked);
 *  - double-locking, forgotten unlocks and lock-order-ignorant early
 *    returns are compile errors, not 2 a.m. pages.
 *
 * On non-clang compilers the attribute macros expand to nothing and
 * the wrappers are zero-cost pass-throughs — GCC builds are bit-for-bit
 * the code you would have written with std primitives directly.
 *
 * Condition-variable pattern: CondVar::wait(lock) performs one
 * (release, block, reacquire) cycle and the *caller* owns the
 * predicate loop:
 *
 *     sync::MutexLock lock(mutex_);
 *     while (!ready_condition)     // guarded reads, visibly locked
 *         cv_.wait(lock);
 *
 * Keeping the predicate in the caller's scope is what lets the static
 * analysis see that every guarded access in the predicate happens with
 * the capability held; a std::condition_variable-style predicate
 * overload would hide those reads inside wait() where the analysis
 * loses track of them.
 *
 * The dynamic complement to this static proof is the `tsan` preset
 * (CMakePresets.json): ThreadSanitizer watches the same code race for
 * real at runtime.  Static analysis catches discipline violations the
 * tests never execute; TSan catches races the annotations cannot
 * express (lock-free protocols, release/acquire ordering).  CI runs
 * both.
 */

#ifndef QAOA_COMMON_SYNC_HPP
#define QAOA_COMMON_SYNC_HPP

#include <condition_variable>
#include <mutex>

// ------------------------------------------------------------------ //
// Thread Safety Analysis attribute macros.
//
// Spellings follow the Clang TSA documentation's mutex.h reference
// header.  They are deliberately QAOA_-prefixed: these names leak into
// every header that declares a guarded field, and unprefixed macros
// named CAPABILITY/REQUIRES are a collision waiting to happen.
// ------------------------------------------------------------------ //

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define QAOA_TSA_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef QAOA_TSA_ATTR
#define QAOA_TSA_ATTR(x) // no-op off clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define QAOA_CAPABILITY(x) QAOA_TSA_ATTR(capability(x))

/** Marks an RAII type whose lifetime holds a capability. */
#define QAOA_SCOPED_CAPABILITY QAOA_TSA_ATTR(scoped_lockable)

/** Field may only be accessed while holding @p x. */
#define QAOA_GUARDED_BY(x) QAOA_TSA_ATTR(guarded_by(x))

/** Pointee may only be accessed while holding @p x. */
#define QAOA_PT_GUARDED_BY(x) QAOA_TSA_ATTR(pt_guarded_by(x))

/** Function may only be called while holding the listed capabilities
 *  (the compiler-checked form of the *Locked() naming convention). */
#define QAOA_REQUIRES(...) QAOA_TSA_ATTR(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define QAOA_ACQUIRE(...) QAOA_TSA_ATTR(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities. */
#define QAOA_RELEASE(...) QAOA_TSA_ATTR(release_capability(__VA_ARGS__))

/** Function acquires the capability when it returns @p ret. */
#define QAOA_TRY_ACQUIRE(...) \
    QAOA_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

/** Function may not be called while holding the listed capabilities
 *  (self-deadlock documentation the compiler can check). */
#define QAOA_EXCLUDES(...) QAOA_TSA_ATTR(locks_excluded(__VA_ARGS__))

/** Asserts (without acquiring) that the capability is held. */
#define QAOA_ASSERT_CAPABILITY(x) QAOA_TSA_ATTR(assert_capability(x))

/** Declares which capability a getter returns a reference to. */
#define QAOA_RETURN_CAPABILITY(x) QAOA_TSA_ATTR(lock_returned(x))

/** Opts one function out of the analysis (init/destroy paths that are
 *  single-threaded by construction).  Use sparingly and say why. */
#define QAOA_NO_THREAD_SAFETY_ANALYSIS \
    QAOA_TSA_ATTR(no_thread_safety_analysis)

namespace qaoa::sync {

class CondVar;
class MutexLock;

/**
 * Annotated std::mutex.  Prefer MutexLock over manual lock()/unlock();
 * the manual pair exists for the rare asymmetric protocol and is just
 * as analysis-checked.
 */
class QAOA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() QAOA_ACQUIRE() { raw_.lock(); }
    void unlock() QAOA_RELEASE() { raw_.unlock(); }
    bool tryLock() QAOA_TRY_ACQUIRE(true) { return raw_.try_lock(); }

  private:
    friend class MutexLock;
    std::mutex raw_;
};

/**
 * Scoped lock over a sync::Mutex — the std::lock_guard /
 * std::unique_lock replacement.  Construction acquires, destruction
 * releases, and unlock()/relock() cover the unique_lock idioms the
 * serving stack actually uses (drop the lock before notifying, wait on
 * a CondVar).  The analysis tracks the manual calls, so "unlocked it,
 * then touched a guarded field anyway" is a compile error.
 */
class QAOA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) QAOA_ACQUIRE(mutex)
        : lock_(mutex.raw_)
    {
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Releases early (e.g. before a CondVar notify); idempotent with
     *  the destructor — the scope-end release is elided when already
     *  unlocked. */
    void unlock() QAOA_RELEASE() { lock_.unlock(); }

    /** Reacquires after unlock(). */
    void relock() QAOA_ACQUIRE() { lock_.lock(); }

    ~MutexLock() QAOA_RELEASE() {} // member unique_lock releases

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/**
 * Annotated std::condition_variable.
 *
 * wait() performs exactly one (release, block, reacquire) cycle on the
 * MutexLock; the caller owns the predicate loop — see the file comment
 * for why the predicate must live in the caller's scope.  Spurious
 * wake-ups are therefore the caller's loop condition to absorb, same
 * as with the raw primitive.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** One wait cycle; @p lock must hold the mutex guarding the
     *  predicate state (it is held again when wait returns). */
    void wait(MutexLock &lock) { cv_.wait(lock.lock_); }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace qaoa::sync

#endif // QAOA_COMMON_SYNC_HPP
