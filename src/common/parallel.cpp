#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace qaoa::par {

namespace {

/** Set while a thread executes chunks of a parallel region; nested
 *  parallelFor calls on such a thread run inline instead of re-entering
 *  the pool. */
thread_local bool tls_in_region = false;

/** QAOA_THREADS (clamped to >= 1), or hardware_concurrency fallback. */
int
resolveAutoThreads()
{
    // Called once (threadCount caches the result in a static); the
    // process never calls setenv, so the environment block is stable.
    if (const char *env = std::getenv("QAOA_THREADS")) { // NOLINT(concurrency-mt-unsafe)
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 4096)
            return static_cast<int>(v);
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
}

/**
 * Lazily-started worker pool shared by every parallel region.
 *
 * One region runs at a time (run() serializes on run_mutex_); the
 * calling thread participates, so a pool sized for T threads keeps
 * T - 1 workers.  Chunks are claimed from an atomic cursor, which
 * balances uneven chunk costs without affecting determinism (each chunk
 * computes the same values no matter which thread claims it).  run()
 * does not return until every worker that joined the job has left it
 * (working_ == 0), so the job's function can safely live on the
 * caller's stack.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    ~ThreadPool() { shutdown(); }

    /** Runs fn(chunk) for chunk in [0, chunks) on @p threads threads. */
    void
    run(std::uint64_t chunks, int threads,
        const std::function<void(std::uint64_t)> &fn)
    {
        sync::MutexLock run_lock(run_mutex_);
        ensureWorkers(threads - 1);
        {
            sync::MutexLock lock(mutex_);
            fn_ = &fn;
            chunks_ = chunks;
            next_.store(0, std::memory_order_relaxed);
            done_.store(0, std::memory_order_relaxed);
            error_ = nullptr;
            failed_.store(false, std::memory_order_relaxed);
            ++generation_;
        }
        cv_.notifyAll();

        // The caller works too; tls_in_region makes nested regions
        // inline so run_mutex_ is never re-acquired on this thread.
        tls_in_region = true;
        drainChunks(&fn, chunks);
        tls_in_region = false;

        sync::MutexLock lock(mutex_);
        // Caller-owned predicate loop: the guarded reads stay in a
        // scope the thread-safety analysis sees as locked.
        while (!(done_.load() == chunks_ && working_ == 0))
            done_cv_.wait(lock);
        fn_ = nullptr;
        std::exception_ptr error = error_;
        if (error)
            std::rethrow_exception(error);
    }

  private:
    ThreadPool() = default;

    void
    ensureWorkers(int count)
    {
        sync::MutexLock lock(mutex_);
        while (static_cast<int>(workers_.size()) < count)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    workerLoop()
    {
        tls_in_region = true;
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(std::uint64_t)> *fn = nullptr;
            std::uint64_t chunks = 0;
            {
                sync::MutexLock lock(mutex_);
                while (!(stop_ || (generation_ != seen && fn_ != nullptr)))
                    cv_.wait(lock);
                if (stop_)
                    return;
                seen = generation_;
                fn = fn_;
                chunks = chunks_;
                ++working_;
            }
            drainChunks(fn, chunks);
            {
                sync::MutexLock lock(mutex_);
                --working_;
                if (working_ == 0)
                    done_cv_.notifyAll();
            }
        }
    }

    /** Claims and executes chunks until the cursor is exhausted. */
    void
    drainChunks(const std::function<void(std::uint64_t)> *fn,
                std::uint64_t chunks)
    {
        for (;;) {
            std::uint64_t c = next_.fetch_add(1, std::memory_order_relaxed);
            if (c >= chunks)
                break;
            if (!failed_.load(std::memory_order_relaxed)) {
                // Firewall: a throwing chunk must not unwind a pool
                // thread.  Capture the first escapee for the region
                // owner to rethrow; siblings keep draining the cursor.
                std::exception_ptr escaped =
                    exceptionBoundaryCapture([&] { (*fn)(c); });
                if (escaped) {
                    sync::MutexLock lock(mutex_);
                    if (!error_)
                        error_ = escaped;
                    failed_.store(true, std::memory_order_relaxed);
                }
            }
            if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
                sync::MutexLock lock(mutex_);
                done_cv_.notifyAll();
            }
        }
    }

    void
    shutdown()
    {
        {
            sync::MutexLock lock(mutex_);
            stop_ = true;
        }
        cv_.notifyAll();
        for (std::thread &t : workers_)
            t.join();
        workers_.clear();
    }

    sync::Mutex run_mutex_; ///< Serializes whole regions.
    sync::Mutex mutex_;     ///< Guards job state + wait conditions.
    sync::CondVar cv_;
    sync::CondVar done_cv_;
    /** Only grown under mutex_ inside ensureWorkers(); run_mutex_ makes
     *  that single-caller, and shutdown() runs after all regions. */
    std::vector<std::thread> workers_;
    std::uint64_t generation_ QAOA_GUARDED_BY(mutex_) = 0;
    /** Workers currently inside drainChunks(). */
    int working_ QAOA_GUARDED_BY(mutex_) = 0;
    bool stop_ QAOA_GUARDED_BY(mutex_) = false;

    // Current job (valid while fn_ != nullptr).
    const std::function<void(std::uint64_t)> *fn_ QAOA_GUARDED_BY(mutex_) =
        nullptr;
    std::uint64_t chunks_ QAOA_GUARDED_BY(mutex_) = 0;
    std::atomic<std::uint64_t> next_{0};
    std::atomic<std::uint64_t> done_{0};
    std::atomic<bool> failed_{false};
    std::exception_ptr error_ QAOA_GUARDED_BY(mutex_);
};

std::atomic<int> g_thread_override{0};

} // namespace

int
threadCount()
{
    int override = g_thread_override.load(std::memory_order_relaxed);
    if (override > 0)
        return override;
    static const int auto_threads = resolveAutoThreads();
    return auto_threads;
}

void
setThreadCount(int n)
{
    QAOA_CHECK(n >= 0 && n <= 4096, "thread count out of range: " << n);
    QAOA_CHECK(!tls_in_region,
               "setThreadCount() inside a parallel region");
    g_thread_override.store(n, std::memory_order_relaxed);
}

bool
inParallelRegion()
{
    return tls_in_region;
}

void
parallelForChunks(std::uint64_t begin, std::uint64_t end,
                  const ChunkBody &body)
{
    if (begin >= end)
        return;
    const std::uint64_t n = end - begin;
    const std::uint64_t chunks = (n + kChunkSize - 1) / kChunkSize;
    auto chunk_range = [&](std::uint64_t c) {
        std::uint64_t cb = begin + c * kChunkSize;
        std::uint64_t ce = std::min(end, cb + kChunkSize);
        body(c, cb, ce);
    };
    const int threads = threadCount();
    if (threads <= 1 || n < kSerialCutoff || tls_in_region || chunks == 1) {
        // Inline path still walks the same chunk grid so per-chunk
        // results (e.g. reduction partials) are identical to the
        // threaded path.
        for (std::uint64_t c = 0; c < chunks; ++c)
            chunk_range(c);
        return;
    }
    ThreadPool::instance().run(chunks, threads, chunk_range);
}

void
parallelFor(std::uint64_t begin, std::uint64_t end, const RangeBody &body)
{
    parallelForChunks(begin, end,
                      [&](std::uint64_t, std::uint64_t cb, std::uint64_t ce) {
                          body(cb, ce);
                      });
}

double
parallelReduceSum(std::uint64_t begin, std::uint64_t end,
                  const RangeSum &chunkSum)
{
    if (begin >= end)
        return 0.0;
    const std::uint64_t n = end - begin;
    const std::uint64_t chunks = (n + kChunkSize - 1) / kChunkSize;
    std::vector<double> partials(chunks, 0.0);
    parallelForChunks(begin, end,
                      [&](std::uint64_t c, std::uint64_t cb,
                          std::uint64_t ce) { partials[c] = chunkSum(cb, ce); });
    // Combine in chunk order: the total is independent of which thread
    // produced each partial.
    double total = 0.0;
    for (double p : partials)
        total += p;
    return total;
}

void
parallelForTasks(std::uint64_t count,
                 const std::function<void(std::uint64_t)> &body)
{
    if (count == 0)
        return;
    const int threads = threadCount();
    if (threads <= 1 || count == 1 || tls_in_region) {
        for (std::uint64_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    ThreadPool::instance().run(count, threads, body);
}

ScopedInlineRegion::ScopedInlineRegion() : previous_(tls_in_region)
{
    tls_in_region = true;
}

ScopedInlineRegion::~ScopedInlineRegion()
{
    tls_in_region = previous_;
}

WorkerGroup::~WorkerGroup()
{
    // A worker's exception surfacing from a destructor would
    // terminate; join() explicitly to observe it.
    destructorBoundary("WorkerGroup::~WorkerGroup", [this] { join(); });
}

void
WorkerGroup::start(int count, const std::function<void(int)> &body)
{
    QAOA_CHECK(count >= 1, "WorkerGroup: thread count must be >= 1");
    QAOA_ASSERT(threads_.empty(), "WorkerGroup: start() on a live group");
    error_ = nullptr;
    threads_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        threads_.emplace_back([this, body, i] {
            // Firewall: preserve the original exception for join() to
            // rethrow on the owning thread (first escapee wins).
            std::exception_ptr escaped =
                exceptionBoundaryCapture([&] { body(i); });
            if (escaped) {
                sync::MutexLock lock(error_mutex_);
                if (!error_)
                    error_ = escaped;
            }
        });
    }
}

void
WorkerGroup::join()
{
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
    threads_.clear();
    std::exception_ptr error;
    {
        sync::MutexLock lock(error_mutex_);
        error = error_;
        error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
parallelForTasks(std::uint64_t count, const run::CancelToken &cancel,
                 const std::function<void(std::uint64_t)> &body)
{
    parallelForTasks(count, [&](std::uint64_t i) {
        if (cancel.cancelled())
            return; // batch is being torn down; skip unstarted work
        std::exception_ptr escaped =
            exceptionBoundaryCapture([&] { body(i); });
        if (escaped) {
            cancel.requestCancel(); // fail fast: unblock the siblings
            std::rethrow_exception(escaped);
        }
    });
}

} // namespace qaoa::par
