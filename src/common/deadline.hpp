/**
 * @file
 * Monotonic-clock deadlines, per-stage watchdog accounting, and
 * seeded retry-with-backoff helpers.
 *
 * A Deadline is an absolute point on std::chrono::steady_clock —
 * immune to wall-clock adjustments — that compile stages poll through
 * run::RunGuard.  tightened() derives per-stage budgets: each retry
 * rung gets min(total deadline, now + stage budget), so one stuck
 * stage cannot eat the whole compile's time.
 *
 * StageTrace is the watchdog's flight record: one entry per pipeline
 * stage (retry-ladder rung) with its elapsed time, retry ordinal and
 * outcome; CompileResult::stages collects them so a TimedOut status
 * tells exactly which stage burned the budget.
 *
 * retryWithBackoff() wraps flaky operations (e.g. checkpoint file
 * writes) with exponential backoff and jitter drawn from the common
 * seeded Rng, so retry schedules are deterministic under test.
 */

#ifndef QAOA_COMMON_DEADLINE_HPP
#define QAOA_COMMON_DEADLINE_HPP

#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/cancel.hpp"
#include "common/rng.hpp"

namespace qaoa::run {

/** Thrown by poll() when a deadline expired. */
class TimedOutError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Absolute monotonic-clock deadline.  Default-constructed deadlines
 * never expire; afterMs() builds finite ones.  Copyable and cheap to
 * poll (one steady_clock read).
 */
class Deadline
{
  public:
    /** Never-expiring deadline. */
    Deadline() = default;

    /** Alias for the default constructor, for call-site readability. */
    static Deadline never() { return {}; }

    /** Deadline @p ms milliseconds from now (>= 0). */
    static Deadline
    afterMs(double ms)
    {
        Deadline d;
        d.finite_ = true;
        d.at_ = d.start_ +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
        return d;
    }

    /** True when a finite deadline was set. */
    bool finite() const { return finite_; }

    /** True when the deadline has passed. */
    bool
    expired() const
    {
        return finite_ && Clock::now() >= at_;
    }

    /** Milliseconds until expiry; +infinity when never-expiring. */
    double
    remainingMs() const
    {
        if (!finite_)
            return std::numeric_limits<double>::infinity();
        return std::chrono::duration<double, std::milli>(at_ -
                                                         Clock::now())
            .count();
    }

    /** Milliseconds since this deadline was created. */
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         start_)
            .count();
    }

    /**
     * The stricter of this deadline and now + @p budget_ms; a negative
     * budget returns *this unchanged.  Used to derive per-stage
     * budgets that can never outlive the total deadline.
     *
     * An already-expired parent clamps the stage budget to zero
     * remaining (expiry at the stage's creation instant) instead of
     * inheriting the parent's point in the past — callers would
     * otherwise observe a stage with a large *negative* budget that
     * "timed out before it started" in the trace.
     */
    Deadline
    tightened(double budget_ms) const
    {
        if (budget_ms < 0.0)
            return *this;
        Deadline stage = afterMs(budget_ms);
        if (finite_ && at_ < stage.at_)
            stage.at_ = at_ < stage.start_ ? stage.start_ : at_;
        return stage;
    }

  private:
    using Clock = std::chrono::steady_clock;

    bool finite_ = false;
    Clock::time_point start_ = Clock::now();
    Clock::time_point at_{};
};

/** How one pipeline stage ended. */
enum class StageOutcome {
    Completed,    ///< Ran to completion.
    Failed,       ///< Compile/verify failure (degradable).
    TimedOut,     ///< Stage or total deadline expired.
    Cancelled,    ///< CancelToken tripped.
    GuardTripped, ///< A resource guard limit was hit.
};

/** Human-readable outcome name ("completed", "timed-out", ...). */
std::string stageOutcomeName(StageOutcome o);

/** Watchdog record of one pipeline stage (one retry-ladder rung). */
struct StageTrace
{
    std::string stage;    ///< Stage label (e.g. "fallback to IC").
    double elapsed_ms = 0.0; ///< Monotonic wall time in the stage.
    int retries = 0;         ///< Prior attempts (0 = first rung).
    StageOutcome outcome = StageOutcome::Completed;
    std::string detail;      ///< Failure reason when not Completed.
};

/** Tunables for retryWithBackoff(). */
struct RetryOptions
{
    int max_attempts = 3;       ///< Total tries (>= 1).
    double base_delay_ms = 1.0; ///< Delay before the first retry.
    double multiplier = 2.0;    ///< Exponential growth per retry.
    double max_delay_ms = 50.0; ///< Delay cap.
    double jitter = 0.5;        ///< Delay scaled by U[1-j, 1+j].
    std::uint64_t seed = 23;    ///< Seed of the jitter stream.
};

/** Backoff delay before retry @p attempt (1-based), with jitter. */
double backoffDelayMs(const RetryOptions &opts, int attempt, Rng &rng);

/**
 * Sleeps about @p delay_ms, polling @p token every few milliseconds;
 * throws CancelledError as soon as the token trips.
 */
void cancellableSleepMs(double delay_ms, const CancelToken &token);

/**
 * Runs @p fn, retrying on exceptions with exponential backoff.
 *
 * Cancellation and timeout exceptions are never retried (they are
 * verdicts, not transient faults).  A retry whose backoff delay would
 * overshoot @p deadline rethrows the last error instead of sleeping
 * past the budget.  @p attempts_out (optional) receives the number of
 * attempts consumed.
 */
template <typename Fn>
auto
retryWithBackoff(Fn &&fn, const RetryOptions &opts,
                 const Deadline &deadline = Deadline(),
                 const CancelToken &token = CancelToken(),
                 int *attempts_out = nullptr) -> decltype(fn())
{
    Rng rng(opts.seed);
    int attempt = 0;
    for (;;) {
        ++attempt;
        if (attempts_out)
            *attempts_out = attempt;
        try {
            return fn();
        } catch (const CancelledError &) {
            throw;
        } catch (const TimedOutError &) {
            throw;
        } catch (const std::exception &) {
            if (attempt >= opts.max_attempts)
                throw;
            const double delay = backoffDelayMs(opts, attempt, rng);
            if (deadline.remainingMs() <= delay)
                throw;
            cancellableSleepMs(delay, token);
        }
    }
}

} // namespace qaoa::run

#endif // QAOA_COMMON_DEADLINE_HPP
