/**
 * @file
 * Small statistics helpers used by the evaluation harness and benches.
 */

#ifndef QAOA_COMMON_STATS_HPP
#define QAOA_COMMON_STATS_HPP

#include <cstddef>
#include <vector>

namespace qaoa {

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 for fewer than 2 points. */
double stddev(const std::vector<double> &xs);

/** Median (average of the two middle elements for even n); 0 if empty. */
double median(std::vector<double> xs);

/** Minimum; 0 for an empty sample. */
double minOf(const std::vector<double> &xs);

/** Maximum; 0 for an empty sample. */
double maxOf(const std::vector<double> &xs);

/**
 * Streaming accumulator for mean/stddev/min/max without storing samples.
 *
 * Uses Welford's algorithm so the variance stays numerically stable for
 * long benchmark sweeps.
 */
class Accumulator
{
  public:
    /** Adds one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Running mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Sample standard deviation (0 for fewer than 2 observations). */
    double stddev() const;

    /** Smallest observation (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest observation (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Ratio of the means of two paired samples (mean(a) / mean(b)).
 *
 * This matches how the paper reports "depth ratio" style bars: the mean
 * metric of the candidate divided by the mean metric of the baseline over
 * the same instance set.  Returns 0 when the baseline mean is 0.
 */
double ratioOfMeans(const std::vector<double> &num,
                    const std::vector<double> &den);

} // namespace qaoa

#endif // QAOA_COMMON_STATS_HPP
