#include "verify/diagnostics.hpp"

#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace qaoa::verify {

const char *
ruleId(Rule r)
{
    switch (r) {
      case Rule::IllegalCoupling: return "QV001";
      case Rule::MaskedQubit: return "QV002";
      case Rule::MappingMismatch: return "QV003";
      case Rule::MissingInteraction: return "QV004";
      case Rule::SpuriousInteraction: return "QV005";
      case Rule::WrongAngle: return "QV006";
      case Rule::GateAfterMeasure: return "QV007";
      case Rule::BadAngle: return "QV008";
      case Rule::UnusedQubit: return "QV009";
      case Rule::NonCommutingReorder: return "QV010";
      case Rule::MeasureMismatch: return "QV011";
      case Rule::OperandRange: return "QV012";
      case Rule::UnmappedQubit: return "QV013";
    }
    QAOA_ASSERT(false, "unknown rule");
    return "";
}

const char *
ruleName(Rule r)
{
    switch (r) {
      case Rule::IllegalCoupling: return "illegal-coupling";
      case Rule::MaskedQubit: return "masked-qubit";
      case Rule::MappingMismatch: return "mapping-mismatch";
      case Rule::MissingInteraction: return "missing-interaction";
      case Rule::SpuriousInteraction: return "spurious-interaction";
      case Rule::WrongAngle: return "wrong-angle";
      case Rule::GateAfterMeasure: return "gate-after-measure";
      case Rule::BadAngle: return "bad-angle";
      case Rule::UnusedQubit: return "unused-qubit";
      case Rule::NonCommutingReorder: return "non-commuting-reorder";
      case Rule::MeasureMismatch: return "measure-mismatch";
      case Rule::OperandRange: return "operand-range";
      case Rule::UnmappedQubit: return "unmapped-qubit";
    }
    QAOA_ASSERT(false, "unknown rule");
    return "";
}

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

Severity
ruleSeverity(Rule r)
{
    return r == Rule::UnusedQubit ? Severity::Warning : Severity::Error;
}

void
VerifyReport::add(Diagnostic d)
{
    if (d.severity == Severity::Error)
        ++errors_;
    diags_.push_back(std::move(d));
}

void
VerifyReport::add(Rule rule, int gate_index, int layer, int q0, int q1,
                  std::string message)
{
    Diagnostic d;
    d.rule = rule;
    d.severity = ruleSeverity(rule);
    d.gate_index = gate_index;
    d.layer = layer;
    d.q0 = q0;
    d.q1 = q1;
    d.message = std::move(message);
    add(std::move(d));
}

void
VerifyReport::add(Rule rule, std::string message)
{
    add(rule, -1, -1, -1, -1, std::move(message));
}

void
VerifyReport::merge(VerifyReport other)
{
    for (Diagnostic &d : other.diags_)
        add(std::move(d));
}

int
VerifyReport::count(Rule rule) const
{
    int n = 0;
    for (const Diagnostic &d : diags_)
        if (d.rule == rule)
            ++n;
    return n;
}

std::string
VerifyReport::summary() const
{
    if (diags_.empty())
        return "clean";
    std::ostringstream os;
    os << errorCount() << (errorCount() == 1 ? " error" : " errors");
    if (warningCount() > 0)
        os << ", " << warningCount()
           << (warningCount() == 1 ? " warning" : " warnings");
    // Stable per-rule counts, ordered by rule ID.
    std::map<std::string, int> by_rule;
    for (const Diagnostic &d : diags_)
        ++by_rule[ruleId(d.rule)];
    os << " (";
    bool first = true;
    for (const auto &[id, n] : by_rule) {
        if (!first)
            os << ", ";
        first = false;
        os << id;
        if (n > 1)
            os << " x" << n;
    }
    os << ")";
    return os.str();
}

Table
VerifyReport::toTable() const
{
    Table t({"rule", "name", "severity", "gate", "layer", "qubits",
             "detail"});
    for (const Diagnostic &d : diags_) {
        std::ostringstream qubits;
        if (d.q0 >= 0) {
            qubits << "q" << d.q0;
            if (d.q1 >= 0)
                qubits << ",q" << d.q1;
        } else {
            qubits << "-";
        }
        t.addRow({ruleId(d.rule), ruleName(d.rule),
                  severityName(d.severity),
                  d.gate_index >= 0 ? std::to_string(d.gate_index) : "-",
                  d.layer >= 0 ? std::to_string(d.layer) : "-",
                  qubits.str(), d.message});
    }
    return t;
}

void
VerifyReport::print(std::ostream &os, bool csv) const
{
    if (!diags_.empty()) {
        Table t = toTable();
        if (csv)
            t.printCsv(os);
        else
            t.print(os);
    }
    os << "verification: " << summary() << "\n";
}

} // namespace qaoa::verify
