#include "verify/verifier.hpp"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <map>
#include <numbers>
#include <sstream>
#include <tuple>
#include <utility>

#include "circuit/commutation.hpp"
#include "circuit/gate.hpp"
#include "common/error.hpp"

namespace qaoa::verify {

namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateType;

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/** Circular distance between two angles (both reduced mod 2π). */
double
angleDistance(double a, double b)
{
    return std::abs(std::remainder(a - b, kTwoPi));
}

/** True when the angle is ≡ 0 (mod 2π) within @p tol. */
bool
angleIsZero(double a, double tol)
{
    return std::abs(std::remainder(a, kTwoPi)) <= tol;
}

/**
 * Canonical multiset key of a gate: type, operands (sorted for symmetric
 * two-qubit gates), classical bit and exact parameters.  Exact double
 * comparison is intentional — routing copies gates verbatim, so a routed
 * gate either matches its source bit-for-bit or something rewrote it.
 */
using GateKey = std::tuple<int, int, int, int, double, double, double>;

GateKey
gateKey(const Gate &g)
{
    int a = g.q0, b = g.q1;
    if (g.arity() == 2 && circuit::isSymmetricTwoQubit(g.type) && a > b)
        std::swap(a, b);
    return {static_cast<int>(g.type), a, b, g.cbit, g.params[0],
            g.params[1], g.params[2]};
}

/** Renders a gate key back into a readable form for diagnostics. */
std::string
describeKey(const GateKey &key)
{
    Gate g;
    g.type = static_cast<GateType>(std::get<0>(key));
    g.q0 = std::get<1>(key);
    g.q1 = std::get<2>(key);
    g.cbit = std::get<3>(key);
    g.params = {std::get<4>(key), std::get<5>(key), std::get<6>(key)};
    return g.toString();
}

/** Walk-time state shared by the replay helpers. */
struct Walker
{
    const Circuit &physical;
    const std::vector<int> &layers;
    VerifyReport &report;
    std::vector<int> phys_to_log;
    std::vector<char> measured;

    /** Validates operand indices; reports QV012 and returns false on a
     *  malformed gate so the walk can skip it. */
    bool operandsValid(const Gate &g, int index)
    {
        if (g.type == GateType::BARRIER)
            return true;
        const int p = physical.numQubits();
        if (g.q0 < 0 || g.q0 >= p) {
            report.add(Rule::OperandRange, index, layers[index], g.q0, -1,
                       gateName(g.type) + " operand q" +
                           std::to_string(g.q0) + " outside register of " +
                           std::to_string(p));
            return false;
        }
        if (g.arity() == 2) {
            if (g.q1 < 0 || g.q1 >= p) {
                report.add(Rule::OperandRange, index, layers[index], g.q1,
                           -1,
                           gateName(g.type) + " operand q" +
                               std::to_string(g.q1) +
                               " outside register of " + std::to_string(p));
                return false;
            }
            if (g.q0 == g.q1) {
                report.add(Rule::OperandRange, index, layers[index], g.q0,
                           g.q1,
                           gateName(g.type) + " with both operands on q" +
                               std::to_string(g.q0));
                return false;
            }
        }
        return true;
    }

    /** QV008: NaN/Inf/denormal parameters. */
    void checkAngles(const Gate &g, int index)
    {
        for (int k = 0; k < circuit::gateParamCount(g.type); ++k) {
            const double v = g.params[static_cast<std::size_t>(k)];
            if (!std::isfinite(v))
                report.add(Rule::BadAngle, index, layers[index], g.q0,
                           g.q1,
                           gateName(g.type) + " parameter " +
                               std::to_string(k) + " is not finite");
            else if (v != 0.0 && std::abs(v) < DBL_MIN)
                report.add(Rule::BadAngle, index, layers[index], g.q0,
                           g.q1,
                           gateName(g.type) + " parameter " +
                               std::to_string(k) + " is denormal");
        }
    }

    /** QV007: unitary on an already-measured qubit. */
    void checkAfterMeasure(const Gate &g, int index)
    {
        if (g.type == GateType::MEASURE || g.type == GateType::BARRIER)
            return;
        for (int q : {g.q0, g.arity() == 2 ? g.q1 : -1})
            if (q >= 0 && measured[static_cast<std::size_t>(q)])
                report.add(Rule::GateAfterMeasure, index, layers[index], q,
                           -1,
                           gateName(g.type) + " on q" + std::to_string(q) +
                               " after its measurement");
    }

    int logicalOf(int phys, int index, const Gate &g)
    {
        const int l = phys_to_log[static_cast<std::size_t>(phys)];
        if (l < 0)
            report.add(Rule::UnmappedQubit, index, layers[index], phys, -1,
                       gateName(g.type) + " on physical q" +
                           std::to_string(phys) +
                           " which holds no logical qubit");
        return l;
    }
};

} // namespace

std::vector<int>
gateLayers(const Circuit &circuit)
{
    std::vector<int> frontier(
        static_cast<std::size_t>(circuit.numQubits()), 0);
    std::vector<int> layers;
    layers.reserve(circuit.gates().size());
    int barrier_level = 0;
    for (const Gate &g : circuit.gates()) {
        if (g.type == GateType::BARRIER) {
            int level = barrier_level;
            for (int f : frontier)
                level = std::max(level, f);
            barrier_level = level;
            std::fill(frontier.begin(), frontier.end(), level);
            layers.push_back(level);
            continue;
        }
        int level = barrier_level;
        level = std::max(level, frontier[static_cast<std::size_t>(
                                    std::clamp(g.q0, 0,
                                               circuit.numQubits() - 1))]);
        if (g.arity() == 2)
            level = std::max(
                level, frontier[static_cast<std::size_t>(std::clamp(
                           g.q1, 0, circuit.numQubits() - 1))]);
        layers.push_back(level);
        frontier[static_cast<std::size_t>(
            std::clamp(g.q0, 0, circuit.numQubits() - 1))] = level + 1;
        if (g.arity() == 2)
            frontier[static_cast<std::size_t>(
                std::clamp(g.q1, 0, circuit.numQubits() - 1))] = level + 1;
    }
    return layers;
}

ReplayResult
replayToLogical(const Circuit &physical,
                const std::vector<int> &initial_log_to_phys,
                bool lift_basis, VerifyReport &report)
{
    const int num_physical = physical.numQubits();
    const int num_logical = static_cast<int>(initial_log_to_phys.size());

    std::vector<int> phys_to_log(static_cast<std::size_t>(num_physical),
                                 -1);
    for (int l = 0; l < num_logical; ++l) {
        const int p = initial_log_to_phys[static_cast<std::size_t>(l)];
        QAOA_CHECK(p >= 0 && p < num_physical,
                   "initial mapping places logical " << l
                       << " on physical " << p << " outside the register");
        QAOA_CHECK(phys_to_log[static_cast<std::size_t>(p)] < 0,
                   "initial mapping places two logical qubits on physical "
                       << p);
        phys_to_log[static_cast<std::size_t>(p)] = l;
    }

    const std::vector<int> layers = gateLayers(physical);
    Walker walker{physical, layers, report, std::move(phys_to_log),
                  std::vector<char>(static_cast<std::size_t>(num_physical),
                                    0)};

    ReplayResult out;
    out.logical = Circuit(num_logical);

    const std::vector<Gate> &gates = physical.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        const int index = static_cast<int>(i);
        if (g.type == GateType::BARRIER) {
            out.logical.add(Gate::barrier());
            continue;
        }
        if (!walker.operandsValid(g, index))
            continue;
        walker.checkAngles(g, index);
        walker.checkAfterMeasure(g, index);

        // Lift the contiguous basis patterns decomposeToBasis()/toQasm()
        // emit: CX·U1/RZ(target)·CX → CPHASE and CX·CX(reversed)·CX →
        // SWAP.  Both constituent triples act on exactly {q0, q1}, so the
        // checks above already cover them.
        GateType type = g.type;
        double angle = g.params[0];
        if (lift_basis && g.type == GateType::CNOT && i + 2 < gates.size()) {
            const Gate &g1 = gates[i + 1];
            const Gate &g2 = gates[i + 2];
            const bool closes = g2.type == GateType::CNOT &&
                                g2.q0 == g.q0 && g2.q1 == g.q1;
            if (closes && g1.type == GateType::CNOT && g1.q0 == g.q1 &&
                g1.q1 == g.q0) {
                type = GateType::SWAP;
                i += 2;
            } else if (closes &&
                       (g1.type == GateType::U1 ||
                        g1.type == GateType::RZ) &&
                       g1.q0 == g.q1) {
                walker.checkAngles(g1, static_cast<int>(i) + 1);
                type = GateType::CPHASE;
                angle = g1.params[0];
                i += 2;
            }
        }

        if (type == GateType::SWAP) {
            std::swap(walker.phys_to_log[static_cast<std::size_t>(g.q0)],
                      walker.phys_to_log[static_cast<std::size_t>(g.q1)]);
            continue;
        }
        if (type == GateType::MEASURE) {
            const int l = walker.logicalOf(g.q0, index, g);
            walker.measured[static_cast<std::size_t>(g.q0)] = 1;
            if (l >= 0)
                out.logical.add(Gate::measure(l, g.cbit));
            continue;
        }
        if (type == GateType::CPHASE || type == GateType::CZ) {
            const int la = walker.logicalOf(g.q0, index, g);
            const int lb = walker.logicalOf(g.q1, index, g);
            if (la < 0 || lb < 0)
                continue;
            const double term_angle =
                type == GateType::CZ ? std::numbers::pi : angle;
            out.interactions.push_back({la, lb, term_angle});
            out.interaction_gates.push_back(index);
            out.logical.add(type == GateType::CZ
                                ? Gate::cz(la, lb)
                                : Gate::cphase(la, lb, term_angle));
            continue;
        }
        if (g.arity() == 2) {
            const int la = walker.logicalOf(g.q0, index, g);
            const int lb = walker.logicalOf(g.q1, index, g);
            if (la < 0 || lb < 0)
                continue;
            Gate mapped = g;
            mapped.q0 = la;
            mapped.q1 = lb;
            out.logical.add(mapped);
            continue;
        }
        const int l = walker.logicalOf(g.q0, index, g);
        if (l < 0)
            continue;
        Gate mapped = g;
        mapped.q0 = l;
        out.logical.add(mapped);
    }

    out.final_log_to_phys.assign(static_cast<std::size_t>(num_logical),
                                 -1);
    for (int p = 0; p < num_physical; ++p) {
        const int l = walker.phys_to_log[static_cast<std::size_t>(p)];
        if (l >= 0)
            out.final_log_to_phys[static_cast<std::size_t>(l)] = p;
    }
    return out;
}

namespace {

/**
 * Matches observed against expected ZZ multisets pair by pair.
 *
 * Within one logical pair, angles are matched greedily under the
 * circular tolerance; an unmatched expected/observed angle couple on the
 * same pair reads as QV006 (wrong angle), a bare unmatched expected as
 * QV004 and a bare unmatched observed as QV005.
 */
void
matchInteractions(const ReplayResult &replay,
                  const std::vector<ZZTerm> &expected,
                  const std::vector<int> &layers, const VerifySpec &spec,
                  VerifyReport &report)
{
    struct Observed
    {
        double angle;
        int gate_index;
        bool matched = false;
    };
    std::map<std::pair<int, int>, std::vector<Observed>> observed;
    for (std::size_t k = 0; k < replay.interactions.size(); ++k) {
        const ZZTerm &t = replay.interactions[k];
        if (spec.ignore_zero_interactions &&
            angleIsZero(t.angle, spec.angle_tolerance))
            continue;
        observed[{std::min(t.a, t.b), std::max(t.a, t.b)}].push_back(
            {t.angle, replay.interaction_gates[k]});
    }

    std::map<std::pair<int, int>, std::vector<double>> unmatched_expected;
    for (const ZZTerm &t : expected) {
        if (spec.ignore_zero_interactions &&
            angleIsZero(t.angle, spec.angle_tolerance))
            continue;
        const std::pair<int, int> key{std::min(t.a, t.b),
                                      std::max(t.a, t.b)};
        auto it = observed.find(key);
        bool matched = false;
        if (it != observed.end()) {
            for (Observed &o : it->second) {
                if (!o.matched &&
                    angleDistance(o.angle, t.angle) <=
                        spec.angle_tolerance) {
                    o.matched = true;
                    matched = true;
                    break;
                }
            }
        }
        if (!matched)
            unmatched_expected[key].push_back(t.angle);
    }

    // Pair leftovers on the same logical pair as wrong-angle findings;
    // the rest are genuinely missing/spurious interactions.
    for (auto &[key, angles] : unmatched_expected) {
        auto it = observed.find(key);
        for (double want : angles) {
            Observed *mismatch = nullptr;
            if (it != observed.end())
                for (Observed &o : it->second)
                    if (!o.matched) {
                        mismatch = &o;
                        break;
                    }
            if (mismatch != nullptr) {
                mismatch->matched = true;
                std::ostringstream os;
                os << "ZZ(" << key.first << "," << key.second
                   << ") has angle " << mismatch->angle << ", expected "
                   << want;
                report.add(Rule::WrongAngle, mismatch->gate_index,
                           layers[static_cast<std::size_t>(
                               mismatch->gate_index)],
                           key.first, key.second, os.str());
            } else {
                std::ostringstream os;
                os << "ZZ(" << key.first << "," << key.second
                   << ") with angle " << want
                   << " missing from the compiled circuit";
                report.add(Rule::MissingInteraction, -1, -1, key.first,
                           key.second, os.str());
            }
        }
    }
    for (const auto &[key, angle_list] : observed) {
        for (const Observed &o : angle_list) {
            if (o.matched)
                continue;
            std::ostringstream os;
            os << "ZZ(" << key.first << "," << key.second
               << ") with angle " << o.angle
               << " has no counterpart in the source problem";
            report.add(Rule::SpuriousInteraction, o.gate_index,
                       layers[static_cast<std::size_t>(o.gate_index)],
                       key.first, key.second, os.str());
        }
    }
}

/** QV001/QV002 raw pass over the physical gates. */
void
checkHardwareConformance(const Circuit &physical, const VerifySpec &spec,
                         const std::vector<int> &layers,
                         VerifyReport &report)
{
    const hw::CouplingMap *map = spec.map;
    if (map != nullptr && physical.numQubits() > map->numQubits())
        report.add(Rule::OperandRange,
                   "circuit register of " +
                       std::to_string(physical.numQubits()) +
                       " qubits exceeds device " + map->name() + " (" +
                       std::to_string(map->numQubits()) + " qubits)");

    const std::vector<Gate> &gates = physical.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const Gate &g = gates[i];
        if (g.type == GateType::BARRIER)
            continue;
        const bool q0_ok = g.q0 >= 0 && g.q0 < physical.numQubits();
        const bool q1_ok = g.arity() != 2 ||
                           (g.q1 >= 0 && g.q1 < physical.numQubits());
        if (!q0_ok || !q1_ok)
            continue; // replay reports QV012 with detail
        if (map != nullptr && g.arity() == 2 && g.q0 != g.q1 &&
            g.q0 < map->numQubits() && g.q1 < map->numQubits() &&
            !map->coupled(g.q0, g.q1))
            report.add(Rule::IllegalCoupling, static_cast<int>(i),
                       layers[i], g.q0, g.q1,
                       gateName(g.type) + " on (q" + std::to_string(g.q0) +
                           ",q" + std::to_string(g.q1) +
                           "): no coupling on " + map->name());
        if (spec.allowed_qubits != nullptr) {
            for (int q : {g.q0, g.arity() == 2 ? g.q1 : -1}) {
                if (q >= 0 &&
                    q < static_cast<int>(spec.allowed_qubits->size()) &&
                    !(*spec.allowed_qubits)[static_cast<std::size_t>(q)])
                    report.add(Rule::MaskedQubit, static_cast<int>(i),
                               layers[i], q, -1,
                               gateName(g.type) + " on masked/dead q" +
                                   std::to_string(q));
            }
        }
    }
}

} // namespace

VerifyReport
verifyCircuit(const Circuit &physical, const VerifySpec &spec)
{
    VerifyReport report;
    const std::vector<int> layers = gateLayers(physical);

    checkHardwareConformance(physical, spec, layers, report);

    ReplayResult replay = replayToLogical(
        physical, spec.initial_log_to_phys, spec.lift_basis, report);

    if (!spec.expected_final.empty()) {
        if (spec.expected_final.size() != replay.final_log_to_phys.size()) {
            report.add(Rule::MappingMismatch,
                       "reported final mapping covers " +
                           std::to_string(spec.expected_final.size()) +
                           " logical qubits, replay covers " +
                           std::to_string(replay.final_log_to_phys.size()));
        } else {
            for (std::size_t l = 0; l < spec.expected_final.size(); ++l) {
                if (spec.expected_final[l] != replay.final_log_to_phys[l])
                    report.add(
                        Rule::MappingMismatch, -1, -1,
                        spec.expected_final[l], replay.final_log_to_phys[l],
                        "logical " + std::to_string(l) +
                            ": compiler reports physical " +
                            std::to_string(spec.expected_final[l]) +
                            ", SWAP replay yields " +
                            std::to_string(replay.final_log_to_phys[l]));
            }
        }
    }

    if (spec.check_measure_convention) {
        for (const Gate &g : replay.logical.gates())
            if (g.type == GateType::MEASURE && g.q0 != g.cbit)
                report.add(Rule::MeasureMismatch, -1, -1, g.q0, -1,
                           "logical qubit " + std::to_string(g.q0) +
                               " measured into classical bit " +
                               std::to_string(g.cbit));
    }

    if (spec.expected_interactions != nullptr) {
        matchInteractions(replay, *spec.expected_interactions, layers,
                          spec, report);
        // Any leftover CNOT in the lifted logical view entangles qubits
        // outside the declared ZZ set — a miscompile even if the ZZ
        // multiset happens to balance.
        for (const Gate &g : replay.logical.gates())
            if (g.type == GateType::CNOT)
                report.add(Rule::SpuriousInteraction, -1, -1, g.q0, g.q1,
                           "entangling cnot on logical (q" +
                               std::to_string(g.q0) + ",q" +
                               std::to_string(g.q1) +
                               ") outside the ZZ interaction set");
    }

    if (spec.lints) {
        std::vector<char> touched(
            static_cast<std::size_t>(physical.numQubits()), 0);
        for (const Gate &g : physical.gates()) {
            if (g.type == GateType::BARRIER)
                continue;
            if (g.q0 >= 0 && g.q0 < physical.numQubits())
                touched[static_cast<std::size_t>(g.q0)] = 1;
            if (g.arity() == 2 && g.q1 >= 0 &&
                g.q1 < physical.numQubits())
                touched[static_cast<std::size_t>(g.q1)] = 1;
        }
        for (std::size_t l = 0; l < spec.initial_log_to_phys.size(); ++l) {
            const int p = spec.initial_log_to_phys[l];
            if (p >= 0 && p < physical.numQubits() &&
                !touched[static_cast<std::size_t>(p)])
                report.add(Rule::UnusedQubit, -1, -1, p, -1,
                           "logical qubit " + std::to_string(l) +
                               " allocated on physical q" +
                               std::to_string(p) +
                               " but never operated on");
        }
    }

    return report;
}

VerifyReport
verifyRouted(const Circuit &logical, const Circuit &routed,
             const hw::CouplingMap &map,
             const std::vector<int> &initial_log_to_phys,
             const std::vector<int> &expected_final)
{
    VerifySpec spec;
    spec.map = &map;
    spec.initial_log_to_phys = initial_log_to_phys;
    spec.expected_final = expected_final;
    spec.lift_basis = false;
    spec.check_measure_convention = false;
    spec.lints = false;
    VerifyReport report = verifyCircuit(routed, spec);

    // Gate preservation: the routed circuit, re-indexed to logical qubits
    // with SWAPs consumed, must hold exactly the source gate multiset.
    VerifyReport replay_report;
    ReplayResult replay = replayToLogical(routed, initial_log_to_phys,
                                          /*lift_basis=*/false,
                                          replay_report);
    std::map<GateKey, int> balance;
    for (const Gate &g : logical.gates())
        if (g.type != GateType::BARRIER && g.type != GateType::SWAP)
            ++balance[gateKey(g)];
    for (const Gate &g : replay.logical.gates())
        if (g.type != GateType::BARRIER)
            --balance[gateKey(g)];
    for (const auto &[key, count] : balance) {
        if (count > 0)
            report.add(Rule::MissingInteraction,
                       std::to_string(count) + " instance(s) of '" +
                           describeKey(key) +
                           "' missing from the routed circuit");
        else if (count < 0)
            report.add(Rule::SpuriousInteraction,
                       std::to_string(-count) + " extra instance(s) of '" +
                           describeKey(key) + "' in the routed circuit");
    }
    return report;
}

void
checkReorder(const Circuit &reference, const Circuit &observed,
             VerifyReport &report)
{
    std::vector<const Gate *> ref;
    for (const Gate &g : reference.gates())
        if (g.type != GateType::BARRIER)
            ref.push_back(&g);
    std::vector<const Gate *> obs;
    for (const Gate &g : observed.gates())
        if (g.type != GateType::BARRIER)
            obs.push_back(&g);

    // Stable assignment of observed gates to reference positions;
    // identical gates are interchangeable, so in-order pairing is exact.
    std::map<GateKey, std::vector<std::size_t>> positions;
    for (std::size_t r = 0; r < ref.size(); ++r)
        positions[gateKey(*ref[r])].push_back(r);
    std::map<GateKey, std::size_t> next;
    std::vector<long> perm(obs.size(), -1);
    for (std::size_t k = 0; k < obs.size(); ++k) {
        const GateKey key = gateKey(*obs[k]);
        auto it = positions.find(key);
        std::size_t &cursor = next[key];
        if (it == positions.end() || cursor >= it->second.size()) {
            report.add(Rule::SpuriousInteraction, static_cast<int>(k), -1,
                       obs[k]->q0, obs[k]->q1,
                       "'" + obs[k]->toString() +
                           "' has no counterpart in the reference order");
            continue;
        }
        perm[k] = static_cast<long>(it->second[cursor++]);
    }
    for (const auto &[key, pos] : positions) {
        const std::size_t used =
            next.count(key) != 0U ? next.at(key) : 0U;
        if (used < pos.size())
            report.add(Rule::MissingInteraction,
                       std::to_string(pos.size() - used) +
                           " instance(s) of '" + describeKey(key) +
                           "' absent from the observed order");
    }

    // Every exchanged pair must commute.
    for (std::size_t i = 0; i < obs.size(); ++i) {
        if (perm[i] < 0)
            continue;
        for (std::size_t j = i + 1; j < obs.size(); ++j) {
            if (perm[j] < 0 || perm[i] < perm[j])
                continue;
            if (!circuit::gatesCommute(*obs[i], *obs[j]))
                report.add(Rule::NonCommutingReorder, static_cast<int>(j),
                           -1, obs[j]->q0, obs[j]->q1,
                           "'" + obs[i]->toString() + "' and '" +
                               obs[j]->toString() +
                               "' were exchanged but do not commute");
        }
    }
}

} // namespace qaoa::verify
