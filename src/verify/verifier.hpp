/**
 * @file
 * Translation-validation verifier for compiled QAOA circuits.
 *
 * The paper's methodologies (QAIM/IP/IC/VIC) freely reorder and re-route
 * the cost layer on the strength of CPHASE commutativity; nothing in the
 * compile pipeline used to *prove* the output still implements the source
 * problem.  This module closes that gap statically — no simulation, any
 * qubit count:
 *
 *  1. coupling conformance — every two-qubit gate acts on an enabled
 *     edge of the (possibly fault-degraded) coupling map;
 *  2. mapping replay — the logical→physical permutation is re-derived
 *     by replaying SWAPs from the initial layout and cross-checked
 *     against the mapping the compiler reported;
 *  3. interaction equivalence — walking the circuit under the replayed
 *     mapping yields a multiset of logical ZZ(i,j,γ) interactions that
 *     must equal the problem's weighted edge multiset exactly (each
 *     CPHASE once, correct pair, correct angle mod 2π);
 *
 * plus structural lint rules (QV007..QV013) and a commutation check
 * (QV010) that certifies a reordered gate sequence is reachable from a
 * reference order by exchanging only commuting neighbours.
 *
 * Basis circuits are handled by *lifting*: the contiguous patterns
 * CX(a,b)·U1/RZ(b,γ)·CX(a,b) → CPHASE(a,b,γ) and CX(a,b)·CX(b,a)·CX(a,b)
 * → SWAP(a,b) emitted by decomposeToBasis()/toQasm() are recognized, so
 * exported QASM round-trips verify too.
 *
 * Everything here speaks raw logical→physical vectors rather than
 * transpiler::Layout so the transpiler itself can call the verifier
 * without a dependency cycle.
 */

#ifndef QAOA_VERIFY_VERIFIER_HPP
#define QAOA_VERIFY_VERIFIER_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "hardware/coupling_map.hpp"
#include "verify/diagnostics.hpp"

namespace qaoa::verify {

/** One expected logical ZZ interaction with its absolute CPHASE angle
 *  (the caller expands levels and edge weights: angle = γ_level · w). */
struct ZZTerm
{
    int a = 0;          ///< First logical qubit.
    int b = 0;          ///< Second logical qubit.
    double angle = 0.0; ///< CPHASE angle carried by the interaction.
};

/** What a mapping replay of a physical circuit recovered. */
struct ReplayResult
{
    /** The circuit re-indexed to logical qubits under the evolving
     *  mapping; SWAPs (raw or lifted) are consumed into the mapping and
     *  not emitted.  Lifted CPHASEs appear as single CPHASE gates. */
    circuit::Circuit logical{0};

    /** Replayed final logical→physical mapping. */
    std::vector<int> final_log_to_phys;

    /** Logical ZZ interactions observed (CPHASE raw or lifted; CZ counts
     *  as angle π), in program order. */
    std::vector<ZZTerm> interactions;

    /** Gate index (into the physical circuit) of each interaction. */
    std::vector<int> interaction_gates;
};

/**
 * Replays a physical circuit from an initial logical→physical mapping.
 *
 * Walks the gates in order, evolving the mapping at each SWAP, lifting
 * basis-gate patterns when @p lift_basis is set, and recording lint
 * findings (QV007 gate-after-measure, QV008 bad angles, QV011 measure
 * mismatch, QV012 operand range, QV013 unmapped qubit) into @p report.
 *
 * @param physical          Circuit over physical qubits.
 * @param initial_log_to_phys initial mapping (entries distinct, inside
 *                          the register).
 * @param lift_basis        Recognize decomposed CPHASE/SWAP patterns.
 * @param report            Receives walk-time findings.
 */
[[nodiscard]] ReplayResult
replayToLogical(const circuit::Circuit &physical,
                const std::vector<int> &initial_log_to_phys,
                bool lift_basis, VerifyReport &report);

/** Inputs of one full verification run. */
struct VerifySpec
{
    /** Target topology for coupling conformance; nullptr skips QV001. */
    const hw::CouplingMap *map = nullptr;

    /** Usable-qubit mask of a degraded device (QV002); nullptr = all
     *  usable. */
    const std::vector<char> *allowed_qubits = nullptr;

    /** Initial logical→physical mapping the compile started from. */
    std::vector<int> initial_log_to_phys;

    /** Compiler-reported final mapping to cross-check (QV003); empty
     *  skips the cross-check. */
    std::vector<int> expected_final;

    /** Expected logical ZZ multiset (QV004/QV005/QV006); nullptr skips
     *  interaction equivalence. */
    const std::vector<ZZTerm> *expected_interactions = nullptr;

    /** Recognize decomposed CPHASE/SWAP patterns while replaying. */
    bool lift_basis = true;

    /** Run the structural lint rules (QV007..QV013, QV009). */
    bool lints = true;

    /** Require measurements to follow the cbit == logical-qubit
     *  convention (QV011). */
    bool check_measure_convention = true;

    /** Absolute tolerance for angle comparison (after 2π reduction). */
    double angle_tolerance = 1e-9;

    /**
     * Drop expected/observed interactions whose angle is ≡ 0 (mod 2π)
     * before matching — the peephole optimizer legally removes
     * zero-angle CPHASEs, which is not a miscompile.
     */
    bool ignore_zero_interactions = false;
};

/**
 * Runs every enabled check of @p spec against @p physical.
 *
 * This is the per-compile entry point: the QAOA API verifies every
 * retry-ladder rung through it, and the CLI's --verify/--verify-strict
 * render its report.
 */
[[nodiscard]] VerifyReport verifyCircuit(const circuit::Circuit &physical,
                                         const VerifySpec &spec);

/**
 * Generic translation validation for the backend compiler: checks that
 * @p routed is @p logical re-expressed on hardware — same gate multiset
 * (type, logical operands, parameters, classical bits; SWAPs excluded as
 * routing artifacts, BARRIERs ignored), coupling-conformant, with a
 * replayed mapping matching @p expected_final.  Runs on the routed
 * high-level circuit *before* basis translation and peephole.
 */
[[nodiscard]] VerifyReport
verifyRouted(const circuit::Circuit &logical,
             const circuit::Circuit &routed,
             const hw::CouplingMap &map,
             const std::vector<int> &initial_log_to_phys,
             const std::vector<int> &expected_final);

/**
 * QV010: certifies @p observed is a commuting reorder of @p reference.
 *
 * Both circuits must hold the same gate multiset (mismatches surface as
 * QV004/QV005).  Every pair of gates whose relative order differs
 * between the two sequences must commute (circuit/commutation's exact
 * rules with numeric fallback); a non-commuting exchanged pair is a
 * QV010 error.  O(n²) pairwise in the worst case — intended for tests
 * and spot audits, not the hot compile path.  BARRIERs are ignored.
 */
void checkReorder(const circuit::Circuit &reference,
                  const circuit::Circuit &observed, VerifyReport &report);

/** ASAP layer of every gate (BARRIER advances all qubits, occupies no
 *  layer and gets the layer it closes); used for diagnostic locations. */
[[nodiscard]] std::vector<int> gateLayers(const circuit::Circuit &circuit);

} // namespace qaoa::verify

#endif // QAOA_VERIFY_VERIFIER_HPP
