/**
 * @file
 * Structured diagnostics for the translation-validation verifier.
 *
 * Every check in verify/ reports findings as Diagnostic records with a
 * stable rule ID (QV001...), a severity, and the gate/layer source
 * location inside the offending circuit.  A VerifyReport aggregates the
 * findings of one verification run and renders them through
 * common/table (text and CSV) so CLI and CI output stay diff-friendly.
 */

#ifndef QAOA_VERIFY_DIAGNOSTICS_HPP
#define QAOA_VERIFY_DIAGNOSTICS_HPP

#include <ostream>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace qaoa::verify {

/**
 * Rule catalogue (stable IDs; never renumber, only append).
 *
 * Errors break the semantics of the compiled circuit; warnings flag
 * suspicious-but-not-provably-wrong structure.
 */
enum class Rule {
    IllegalCoupling,      ///< QV001: 2q gate on a non-edge of the device.
    MaskedQubit,          ///< QV002: gate touches a dead/masked qubit.
    MappingMismatch,      ///< QV003: replayed final mapping differs from
                          ///< the mapping the compiler reported.
    MissingInteraction,   ///< QV004: expected logical ZZ term absent.
    SpuriousInteraction,  ///< QV005: entangling operation with no
                          ///< counterpart in the source problem.
    WrongAngle,           ///< QV006: ZZ pair present, angle wrong.
    GateAfterMeasure,     ///< QV007: unitary on an already-measured qubit.
    BadAngle,             ///< QV008: NaN/Inf/denormal gate parameter.
    UnusedQubit,          ///< QV009: initially mapped qubit never touched
                          ///< (warning).
    NonCommutingReorder,  ///< QV010: gate order not reachable from the
                          ///< reference order by commuting exchanges.
    MeasureMismatch,      ///< QV011: classical bit != logical qubit held
                          ///< by the measured physical qubit.
    OperandRange,         ///< QV012: operand outside the register or a
                          ///< two-qubit gate with q0 == q1.
    UnmappedQubit,        ///< QV013: non-SWAP gate on a physical qubit
                          ///< holding no logical qubit.
};

/** Stable rule ID, e.g. "QV001". */
const char *ruleId(Rule r);

/** Short kebab-case rule name, e.g. "illegal-coupling". */
const char *ruleName(Rule r);

/** Finding severity. */
enum class Severity {
    Warning, ///< Suspicious structure; does not fail clean().
    Error,   ///< Semantic violation; fails clean().
};

/** "warning" / "error". */
const char *severityName(Severity s);

/** The severity each rule carries (UnusedQubit warns, the rest error). */
Severity ruleSeverity(Rule r);

/** One verifier finding, anchored to a gate when one is implicated. */
struct Diagnostic
{
    Rule rule = Rule::IllegalCoupling;
    Severity severity = Severity::Error;
    int gate_index = -1; ///< Index into circuit.gates(); -1 = whole-circuit.
    int layer = -1;      ///< ASAP layer of the gate; -1 when not located.
    int q0 = -1;         ///< Implicated qubit (physical unless noted).
    int q1 = -1;         ///< Second implicated qubit; -1 when unused.
    std::string message; ///< Human-readable detail.
};

/**
 * Aggregated findings of one verification run.
 *
 * clean() ignores warnings (the compile is semantically valid);
 * spotless() is the --verify-strict bar (no findings at all).
 */
class VerifyReport
{
  public:
    /** Appends a fully built diagnostic. */
    void add(Diagnostic d);

    /** Builds and appends a diagnostic with the rule's severity. */
    void add(Rule rule, int gate_index, int layer, int q0, int q1,
             std::string message);

    /** Appends a whole-circuit diagnostic (no gate location). */
    void add(Rule rule, std::string message);

    /** Moves every finding of @p other into this report. */
    void merge(VerifyReport other);

    /** All findings in detection order. */
    [[nodiscard]] const std::vector<Diagnostic> &
    diagnostics() const
    {
        return diags_;
    }

    /** Number of error-severity findings. */
    [[nodiscard]] int errorCount() const { return errors_; }

    /** Number of warning-severity findings. */
    [[nodiscard]] int warningCount() const
    {
        return static_cast<int>(diags_.size()) - errors_;
    }

    /** Findings carrying @p rule. */
    [[nodiscard]] int count(Rule rule) const;

    /** True when no *errors* were found (warnings allowed). */
    [[nodiscard]] bool clean() const { return errors_ == 0; }

    /** True when nothing at all was found (the --verify-strict bar). */
    [[nodiscard]] bool spotless() const { return diags_.empty(); }

    /** One-line digest, e.g. "2 errors, 1 warning (QV001 x2, QV009)". */
    [[nodiscard]] std::string summary() const;

    /** Findings as a common/table (rule, severity, gate, layer, qubits,
     *  detail) for text or CSV rendering. */
    Table toTable() const;

    /** Renders the findings table plus the summary line. */
    void print(std::ostream &os, bool csv = false) const;

  private:
    std::vector<Diagnostic> diags_;
    int errors_ = 0;
};

} // namespace qaoa::verify

#endif // QAOA_VERIFY_DIAGNOSTICS_HPP
