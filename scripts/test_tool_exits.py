#!/usr/bin/env python3
"""Exit-code contract tests for the command-line tools.

README.md documents one exit-code table per tool; these tests pin the
codes the firewall work made load-bearing: an induced failure (missing
input file, torn qbin document, unknown flag) must exit with the
documented code and a classified one-line report — never a signal
(abort / uncaught exception) and never a silent zero.

Usage: test_tool_exits.py QAOA_QBIN QAOA_COMPILE
(ctest passes the built binary paths; see tests/CMakeLists.txt).
"""

import os
import struct
import subprocess
import sys
import tempfile
import unittest

QBIN = None
COMPILE = None


def run(binary, *args, timeout=120):
    return subprocess.run(
        [binary, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        timeout=timeout,
    )


class ToolExitTestCase(unittest.TestCase):
    def assertExit(self, proc, code):
        self.assertGreaterEqual(
            proc.returncode, 0,
            f"tool died on a signal ({proc.returncode}): {proc.stderr}",
        )
        self.assertEqual(
            proc.returncode, code,
            f"stdout: {proc.stdout}\nstderr: {proc.stderr}",
        )


class TestQbinExits(ToolExitTestCase):
    def test_missing_input_file_is_fatal_1_not_abort(self):
        out = os.path.join(tempfile.gettempdir(), "unused.qbin")
        proc = run(QBIN, "encode", "/nonexistent/input.qasm", out)
        self.assertExit(proc, 1)
        self.assertIn("qaoa_qbin: fatal:", proc.stderr)

    def test_torn_qbin_document_reports_code_and_offset(self):
        # A structurally valid header with a body cut mid-field: the
        # decode must exit 1 with the malformed/truncated classification
        # and a byte offset in the report, not a crash.
        with tempfile.TemporaryDirectory() as tmp:
            torn = os.path.join(tmp, "torn.qbin")
            with open(torn, "wb") as fh:
                fh.write(b"QBIN")          # magic
                fh.write(bytes([1, 1, 0, 0]))  # kind=circuit v1
                fh.write(struct.pack("<I", 4))  # claims 4 qubits...
                # ...and then the stream ends (no gate count).
            proc = run(QBIN, "decode", torn, os.path.join(tmp, "out.qasm"))
            self.assertExit(proc, 1)
            self.assertIn("qaoa_qbin: fatal:", proc.stderr)
            self.assertIn("truncated", proc.stderr)
            self.assertIn("at byte", proc.stderr)

    def test_bad_magic_reports_malformed(self):
        with tempfile.TemporaryDirectory() as tmp:
            bogus = os.path.join(tmp, "bogus.qbin")
            with open(bogus, "wb") as fh:
                fh.write(b"NOPE" + bytes(8))
            proc = run(QBIN, "decode", bogus, os.path.join(tmp, "out.qasm"))
            self.assertExit(proc, 1)

    def test_usage_errors_exit_2(self):
        self.assertExit(run(QBIN), 2)
        self.assertExit(run(QBIN, "frobnicate"), 2)
        self.assertExit(run(QBIN, "encode", "only-one-path"), 2)

    def test_roundtrip_success_exits_0(self):
        qasm = (
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg q[2];\n"
            "creg c[2];\n"
            "h q[0];\n"
            "cx q[0],q[1];\n"
        )
        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "c.qasm")
            with open(src, "w", encoding="utf-8") as fh:
                fh.write(qasm)
            proc = run(QBIN, "roundtrip", src)
            self.assertExit(proc, 0)


class TestCompileExits(ToolExitTestCase):
    def test_missing_graph_file_exits_1(self):
        proc = run(COMPILE, "--graph", "/nonexistent/graph.txt")
        self.assertExit(proc, 1)
        self.assertIn("error", proc.stderr)

    def test_unknown_flag_exits_2(self):
        self.assertExit(run(COMPILE, "--frobnicate"), 2)

    def test_missing_required_input_exits_2(self):
        self.assertExit(run(COMPILE), 2)

    def test_help_exits_0(self):
        self.assertExit(run(COMPILE, "--help"), 0)

    def test_small_compile_exits_0(self):
        with tempfile.TemporaryDirectory() as tmp:
            graph = os.path.join(tmp, "g.txt")
            with open(graph, "w", encoding="utf-8") as fh:
                fh.write("4\n0 1\n1 2\n2 3\n3 0\n")
            proc = run(COMPILE, "--graph", graph, "--device", "linear4")
            self.assertExit(proc, 0)


def main():
    global QBIN, COMPILE
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    QBIN, COMPILE = sys.argv[1], sys.argv[2]
    for binary in (QBIN, COMPILE):
        if not os.access(binary, os.X_OK):
            print(f"error: not executable: {binary}", file=sys.stderr)
            return 2
    sys.argv = sys.argv[:1]
    unittest.main(verbosity=2)


if __name__ == "__main__":
    sys.exit(main())
