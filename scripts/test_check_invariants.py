#!/usr/bin/env python3
"""Unit tests for check_invariants.py — the linter that guards the
QS/QE project invariants is itself under test.

Each rule gets a positive fixture (a minimal violating tree that must
fire) and a negative fixture (the sanctioned idiom that must stay
quiet), plus edge cases for the comment/string stripper and for the
qs-allow/qe-allow suppression placement (same line vs the line
directly above).  Fixtures are built in temp directories and checked
through run_checks(repo) — the same entry point the CLI uses — so the
tests cover path scoping and exemptions, not just the regexes.

Run directly (python3 scripts/test_check_invariants.py) or through
ctest (test name: check_invariants_unit).  unittest only; no external
dependencies.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))


def _load_linter():
    spec = importlib.util.spec_from_file_location(
        "check_invariants", os.path.join(_HERE, "check_invariants.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ci = _load_linter()


class FixtureTree:
    """A throwaway repo root populated with source fixtures."""

    def __init__(self):
        self._dir = tempfile.TemporaryDirectory(prefix="qs_fixture_")
        self.root = self._dir.name

    def write(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return path

    def cleanup(self):
        self._dir.cleanup()


class LinterTestCase(unittest.TestCase):
    def setUp(self):
        self.tree = FixtureTree()
        self.addCleanup(self.tree.cleanup)

    def violations(self, **kwargs):
        found, _notes = ci.run_checks(self.tree.root, **kwargs)
        return found

    def rule_ids(self, **kwargs):
        return [v[0] for v in self.violations(**kwargs)]

    def assertFires(self, rule_id, **kwargs):
        self.assertIn(rule_id, self.rule_ids(**kwargs))

    def assertQuiet(self, rule_id=None, **kwargs):
        ids = self.rule_ids(**kwargs)
        if rule_id is None:
            self.assertEqual(ids, [])
        else:
            self.assertNotIn(rule_id, ids)


class TestConcurrencyRules(LinterTestCase):
    def test_qs001_raw_mutex_fires(self):
        self.tree.write("src/a.cpp", "#include <mutex>\nstd::mutex m;\n")
        ids = self.rule_ids()
        self.assertEqual(ids.count("QS001"), 2)  # include + declaration

    def test_qs001_exempt_in_sync_hpp(self):
        self.tree.write("src/common/sync.hpp", "std::mutex m;\n")
        self.assertQuiet("QS001")

    def test_qs001_ignores_tests_root(self):
        self.tree.write("tests/t.cpp", "std::mutex m;\n")
        self.assertQuiet("QS001")

    def test_qs002_ofstream_fires_in_src_only(self):
        self.tree.write("src/a.cpp", "std::ofstream out(p);\n")
        self.tree.write("tools/t.cpp", "std::ofstream out(p);\n")
        self.assertEqual(self.rule_ids().count("QS002"), 1)

    def test_qs002_any_fopen_fires(self):
        # The mode string is stripped before matching, so QS002 cannot
        # distinguish write-opens; every raw fopen is a violation.
        self.tree.write(
            "src/a.cpp", 'auto *a = fopen(p, "wb");\nauto *b = fopen(p, "r");\n'
        )
        violations = self.violations()
        self.assertEqual([(v[0], v[2]) for v in violations],
                         [("QS002", 1), ("QS002", 2)])

    def test_qs003_detach_fires_even_in_tests(self):
        self.tree.write("tests/t.cpp", "worker.detach();\n")
        self.assertFires("QS003")

    def test_qs004_sleep_fires_outside_deadline_cpp(self):
        self.tree.write(
            "src/a.cpp",
            "std::this_thread::sleep_for(std::chrono::seconds(1));\n",
        )
        self.assertFires("QS004")
        self.tree.write("src/a.cpp", "int x;\n")
        self.tree.write("src/common/deadline.cpp", "sleep_for(t);\n")
        self.assertQuiet("QS004")

    def test_qs005_thread_type_fires_but_namespace_query_does_not(self):
        self.tree.write(
            "src/a.cpp",
            "int n = std::thread::hardware_concurrency();\n",
        )
        self.assertQuiet("QS005")
        self.tree.write("src/b.cpp", "std::thread t(body);\n")
        self.assertFires("QS005")

    def test_qs006_uncompiled_source_fires(self):
        self.tree.write("src/a.cpp", "int x;\n")
        self.tree.write("src/b.cpp", "int y;\n")
        db = [
            {
                "directory": self.tree.root,
                "file": os.path.join(self.tree.root, "src/a.cpp"),
                "command": "c++ -c src/a.cpp",
            }
        ]
        db_path = self.tree.write("build/compile_commands.json", json.dumps(db))
        violations = self.violations(compile_commands=db_path)
        self.assertEqual([(v[0], v[1]) for v in violations],
                         [("QS006", "src/b.cpp")])

    def test_qs006_skipped_with_note_when_no_db(self):
        self.tree.write("src/a.cpp", "int x;\n")
        found, notes = ci.run_checks(self.tree.root)
        self.assertEqual(found, [])
        self.assertTrue(any("QS006 skipped" in n for n in notes))


class TestErrorPathRules(LinterTestCase):
    def test_qe101_empty_catch_fires(self):
        self.tree.write(
            "src/a.cpp", "void f() { try { g(); } catch (const E &) {} }\n"
        )
        self.assertFires("QE101")

    def test_qe101_comment_only_body_is_still_empty(self):
        # Comments do not excuse a swallow: the body must do something
        # or carry an explicit waiver.
        self.tree.write(
            "src/a.cpp",
            "void f() {\n"
            "    try { g(); } catch (const E &) {\n"
            "        // tolerated\n"
            "    }\n"
            "}\n",
        )
        self.assertFires("QE101")

    def test_qe101_waiver_inside_body_counts(self):
        self.tree.write(
            "src/a.cpp",
            "void f() {\n"
            "    try { g(); } catch (const E &) {\n"
            "        // expected outcome. qe-allow(QE101)\n"
            "    }\n"
            "}\n",
        )
        self.assertQuiet("QE101")

    def test_qe101_fires_in_tests_too(self):
        self.tree.write("tests/t.cpp", "try { g(); } catch (...) {}\n")
        self.assertFires("QE101")

    def test_qe101_nonempty_body_is_quiet(self):
        self.tree.write(
            "src/a.cpp", "try { g(); } catch (const E &e) { log(e); }\n"
        )
        self.assertQuiet("QE101")

    def test_qe102_catch_all_fires_outside_error_hpp(self):
        self.tree.write("src/a.cpp", "try { g(); } catch (...) { h(); }\n")
        self.assertFires("QE102")

    def test_qe102_error_hpp_is_the_firewall(self):
        self.tree.write(
            "src/common/error.hpp", "try { g(); } catch (...) { h(); }\n"
        )
        self.assertQuiet("QE102")

    def test_qe102_typed_catch_is_quiet(self):
        self.tree.write(
            "src/a.cpp", "try { g(); } catch (const std::exception &e) { h(); }\n"
        )
        self.assertQuiet("QE102")

    def test_qe103_throw_in_destructor_fires(self):
        self.tree.write(
            "src/a.cpp",
            "Widget::~Widget()\n"
            "{\n"
            "    if (bad_)\n"
            "        throw std::runtime_error(\"no\");\n"
            "}\n",
        )
        self.assertFires("QE103")

    def test_qe103_throw_in_noexcept_fires(self):
        self.tree.write(
            "src/a.cpp",
            "void f() noexcept\n"
            "{\n"
            "    throw 1;\n"
            "}\n",
        )
        self.assertFires("QE103")

    def test_qe103_throw_after_body_end_is_quiet(self):
        self.tree.write(
            "src/a.cpp",
            "Widget::~Widget()\n"
            "{\n"
            "    cleanup();\n"
            "}\n"
            "void g()\n"
            "{\n"
            "    throw 1;\n"
            "}\n",
        )
        self.assertQuiet("QE103")

    def test_qe103_rethrow_exception_call_is_quiet(self):
        # std::rethrow_exception is a function call, not a `throw`
        # keyword; \bthrow\b must not match inside the identifier.
        self.tree.write(
            "src/a.cpp",
            "void f() noexcept\n"
            "{\n"
            "    std::rethrow_exception(e);\n"
            "}\n",
        )
        self.assertQuiet("QE103")

    def test_qe103_noexcept_false_is_quiet(self):
        self.tree.write(
            "src/a.cpp",
            "void f() noexcept(false)\n"
            "{\n"
            "    throw 1;\n"
            "}\n",
        )
        self.assertQuiet("QE103")

    def test_qe104_void_cast_fires_in_src(self):
        self.tree.write("src/a.cpp", "(void)compute();\n")
        self.assertFires("QE104")

    def test_qe104_tests_are_exempt(self):
        self.tree.write("tests/t.cpp", "(void)compute();\n")
        self.assertQuiet("QE104")

    def test_qe104_void_parameter_list_is_quiet(self):
        self.tree.write("src/a.cpp", "int f(void);\nint g(void) { return 0; }\n")
        self.assertQuiet("QE104")

    def test_qe105_unwrapped_tool_main_fires(self):
        self.tree.write(
            "tools/t.cpp", "int main(int argc, char **argv) { return 0; }\n"
        )
        self.assertFires("QE105")

    def test_qe105_toolmain_wrapped_is_quiet(self):
        self.tree.write(
            "tools/t.cpp",
            "int main(int argc, char **argv)\n"
            "{\n"
            "    return qaoa::toolMain(\"t\", [&] { return run(argc, argv); });\n"
            "}\n",
        )
        self.assertQuiet("QE105")

    def test_qe105_headers_and_mainless_files_are_quiet(self):
        self.tree.write("tools/util.hpp", "int main_like();\n")
        self.tree.write("tools/lib.cpp", "int helper() { return 1; }\n")
        self.assertQuiet("QE105")


class TestDurabilityRules(LinterTestCase):
    def catalogue(self, *names):
        """Writes a failpoint.cpp fixture registering *names."""
        body = "".join(f'    "{n}",\n' for n in names)
        self.tree.write(
            "src/common/failpoint.cpp",
            "constexpr const char *const kFailpointCatalogue[] = {\n"
            + body
            + "};\n",
        )

    def test_qs007_raw_rename_fires_in_src_and_tools(self):
        self.tree.write("src/serve/a.cpp", "std::rename(from, to);\n")
        self.tree.write("tools/t.cpp", "::fsync(fd);\n")
        self.assertEqual(self.rule_ids().count("QS007"), 2)

    def test_qs007_fdatasync_fires(self):
        self.tree.write("src/a.cpp", "fdatasync(fd);\n")
        self.assertFires("QS007")

    def test_qs007_fs_cpp_is_the_durability_authority(self):
        self.tree.write(
            "src/common/fs.cpp",
            "::fsync(fd);\nstd::rename(a, b);\nfdatasync(fd);\n",
        )
        self.assertQuiet("QS007")

    def test_qs007_renamefile_wrapper_is_quiet(self):
        self.tree.write(
            "src/serve/a.cpp", "(void)fs::renameFile(a, b);\n"
        )
        self.assertQuiet("QS007")

    def test_qs007_tests_root_is_exempt(self):
        self.tree.write("tests/t.cpp", "std::rename(a, b);\n")
        self.assertQuiet("QS007")

    def test_qs007_suppression(self):
        self.tree.write(
            "src/a.cpp", "::fsync(fd); // qs-allow(QS007): fixture\n"
        )
        self.assertQuiet("QS007")

    def test_qe106_bijection_is_quiet(self):
        self.catalogue("fs.write", "cache.persist")
        self.tree.write(
            "src/common/fs2.cpp", 'failpoint::poll("fs.write");\n'
        )
        self.tree.write(
            "src/serve/c.cpp",
            'auto fp = failpoint::poll(\n    "cache.persist");\n',
        )
        self.assertQuiet("QE106")

    def test_qe106_unregistered_poll_fires(self):
        self.catalogue("fs.write")
        self.tree.write(
            "src/common/fs2.cpp", 'failpoint::poll("fs.write");\n'
        )
        self.tree.write(
            "src/serve/c.cpp", 'failpoint::poll("no.such.point");\n'
        )
        violations = self.violations()
        self.assertEqual(
            [(v[0], v[1]) for v in violations if v[0] == "QE106"],
            [("QE106", "src/serve/c.cpp")],
        )

    def test_qe106_orphan_catalogue_entry_fires(self):
        self.catalogue("fs.write", "cache.evict")
        self.tree.write(
            "src/common/fs2.cpp", 'failpoint::poll("fs.write");\n'
        )
        violations = self.violations()
        self.assertEqual(
            [(v[0], v[1]) for v in violations if v[0] == "QE106"],
            [("QE106", "src/common/failpoint.cpp")],
        )

    def test_qe106_duplicate_catalogue_entry_fires(self):
        self.catalogue("fs.write", "fs.write")
        self.tree.write(
            "src/common/fs2.cpp", 'failpoint::poll("fs.write");\n'
        )
        self.assertFires("QE106")

    def test_qe106_second_poll_site_fires(self):
        self.catalogue("fs.write")
        self.tree.write(
            "src/common/fs2.cpp", 'failpoint::poll("fs.write");\n'
        )
        self.tree.write(
            "src/serve/c.cpp", 'failpoint::poll("fs.write");\n'
        )
        self.assertEqual(self.rule_ids().count("QE106"), 1)

    def test_qe106_poll_name_survives_string_stripping(self):
        # The name lives inside a string literal: the scanner must keep
        # strings (unlike the token rules) or every site goes dark.
        self.catalogue("fs.write")
        self.tree.write(
            "src/common/fs2.cpp",
            '/* comment */ failpoint::poll("fs.write");\n',
        )
        self.assertQuiet("QE106")

    def test_qe106_tree_without_failpoints_is_quiet(self):
        self.tree.write("src/a.cpp", "int x;\n")
        self.assertQuiet("QE106")


class TestStripping(LinterTestCase):
    def test_token_in_line_comment_is_ignored(self):
        self.tree.write("src/a.cpp", "// std::mutex would be wrong here\n")
        self.assertQuiet()

    def test_token_in_block_comment_is_ignored(self):
        self.tree.write(
            "src/a.cpp", "/* std::thread t; sleep_for(x); catch (...) {} */\n"
        )
        self.assertQuiet()

    def test_token_in_string_literal_is_ignored(self):
        self.tree.write(
            "src/a.cpp", 'const char *s = "std::mutex catch (...)";\n'
        )
        self.assertQuiet()

    def test_escaped_quote_does_not_end_string(self):
        self.tree.write(
            "src/a.cpp", 'const char *s = "\\" std::mutex";\nint x;\n'
        )
        self.assertQuiet()

    def test_line_numbers_survive_block_comments(self):
        self.tree.write(
            "src/a.cpp", "/* one\n   two\n   three */\nstd::mutex m;\n"
        )
        violations = self.violations()
        self.assertEqual([(v[0], v[2]) for v in violations], [("QS001", 4)])

    def test_code_after_comment_on_same_line_is_checked(self):
        self.tree.write("src/a.cpp", "/* note */ std::mutex m;\n")
        self.assertFires("QS001")


class TestSuppression(LinterTestCase):
    def test_allow_on_same_line(self):
        self.tree.write(
            "src/a.cpp", "std::mutex m; // qs-allow(QS001): fixture\n"
        )
        self.assertQuiet()

    def test_allow_on_preceding_line(self):
        self.tree.write(
            "src/a.cpp", "// qs-allow(QS001): fixture\nstd::mutex m;\n"
        )
        self.assertQuiet()

    def test_allow_two_lines_above_does_not_count(self):
        self.tree.write(
            "src/a.cpp", "// qs-allow(QS001): fixture\n\nstd::mutex m;\n"
        )
        self.assertFires("QS001")

    def test_allow_is_rule_specific(self):
        self.tree.write(
            "src/a.cpp", "std::mutex m; // qs-allow(QS002): wrong rule\n"
        )
        self.assertFires("QS001")

    def test_qe_allow_spelling_for_qe_rules(self):
        self.tree.write(
            "src/a.cpp", "(void)compute(); // qe-allow(QE104): best effort\n"
        )
        self.assertQuiet("QE104")

    def test_multiline_comment_run_anchors_on_last_line(self):
        # A `//` run ending directly above the statement covers it even
        # when the qe-allow marker is on that final comment line.
        self.tree.write(
            "src/a.cpp",
            "// Best-effort cleanup; failure only leaves garbage\n"
            "// behind, never affects correctness. qe-allow(QE104)\n"
            "(void)cleanup();\n",
        )
        self.assertQuiet("QE104")


class TestRepoBaseline(unittest.TestCase):
    def test_real_repo_is_clean(self):
        """The tree this linter ships in must hold its own invariants."""
        repo = os.path.dirname(_HERE)
        found, _notes = ci.run_checks(repo)
        self.assertEqual(
            found, [], "repository violates its own invariants"
        )


if __name__ == "__main__":
    unittest.main(verbosity=2)
