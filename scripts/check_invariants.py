#!/usr/bin/env python3
"""Project-invariant linter: concurrency and persistence rules (QS00x).

The QAOA serving stack is proved race-free by three complementary
layers: clang's thread-safety analysis (static, per-translation-unit),
ThreadSanitizer (dynamic, whole-program), and this linter — which
enforces the *project conventions* that make the first two layers
sound.  TSA can only check locks it can see, so every lock must be a
sync::Mutex (QS001); crash-safety proofs assume every persistence
write is an atomic rename (QS002); clean shutdown proofs assume no
thread outlives its owner (QS003, QS005); and cancellation-latency
bounds assume no thread blocks in an uncancellable sleep (QS004).

Rules (see DESIGN.md §13 for the catalogue with rationale):

  QS001  No raw std::mutex / std::lock_guard / std::unique_lock /
         std::condition_variable / <mutex> / <condition_variable>
         outside src/common/sync.hpp.  Wrappers carry the capability
         annotations; a raw primitive is invisible to the analysis.
  QS002  No direct write-opens (std::ofstream, fopen "w"/"a") in src/
         outside common/fs.cpp.  Persistence goes through
         fs::atomicWriteFile (temp + rename) so a crash never leaves
         a torn file.
  QS003  No std::thread::detach().  A detached thread cannot be
         joined, so shutdown cannot prove quiescence.
  QS004  No blocking sleeps (sleep_for / sleep_until / usleep /
         nanosleep) in src/ or tools/ outside common/deadline.cpp.
         run::cancellableSleepMs is the one sanctioned sleep; it
         wakes on cancellation.
  QS005  No std::thread construction outside src/common/parallel.*.
         ThreadPool and WorkerGroup are the two thread substrates;
         both guarantee join-on-destruction.
  QS006  Every .cpp under src/ and tools/ appears in the compilation
         database — a file the build does not compile is a file no
         analysis ever sees.  (Skipped unless compile_commands.json
         is found or given via --compile-commands.)

Suppression: a `qs-allow(QS00x)` comment on the offending line or the
line directly above it waives that rule for that line; the comment is
expected to say why.  Matching is text-based on comment/string-stripped
source — crude but dependency-free, same trade as scripts/serve_soak.py.

Exit status: 0 clean, 1 violations found, 2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc")

# rule id -> (description, regex on stripped code, roots, exempt paths)
RULES = {
    "QS001": {
        "summary": "raw synchronization primitive outside common/sync.hpp",
        "pattern": re.compile(
            r"std::(recursive_|timed_|shared_)*mutex\b"
            r"|std::lock_guard\b|std::unique_lock\b|std::scoped_lock\b"
            r"|std::shared_lock\b|std::condition_variable\b"
            r"|#\s*include\s*<(mutex|condition_variable|shared_mutex)>"
        ),
        "roots": ("src", "tools"),
        "exempt": ("src/common/sync.hpp",),
    },
    "QS002": {
        "summary": "persistence write bypassing fs::atomicWriteFile",
        "pattern": re.compile(
            r"std::ofstream\b|\bfopen\s*\([^,)]*,\s*\"[wa]"
        ),
        "roots": ("src",),
        "exempt": ("src/common/fs.cpp",),
    },
    "QS003": {
        "summary": "detached thread (shutdown cannot prove quiescence)",
        "pattern": re.compile(r"\.\s*detach\s*\(\s*\)"),
        "roots": ("src", "tools", "tests", "bench"),
        "exempt": (),
    },
    "QS004": {
        "summary": "blocking sleep bypassing run::cancellableSleepMs",
        "pattern": re.compile(
            r"\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bnanosleep\s*\("
        ),
        "roots": ("src", "tools"),
        "exempt": ("src/common/deadline.cpp",),
    },
    "QS005": {
        "summary": "std::thread outside the common/parallel substrates",
        # std::thread:: (e.g. hardware_concurrency) is a namespace
        # query, not a thread birth; only the bare type is flagged.
        "pattern": re.compile(r"std::thread\b(?!::)"),
        "roots": ("src", "tools"),
        "exempt": ("src/common/parallel.hpp", "src/common/parallel.cpp"),
    },
}

ALLOW_RE = re.compile(r"qs-allow\(\s*(QS\d{3})\s*\)")


def strip_code(text):
    """Returns (stripped_lines, allow_map).

    stripped_lines: source lines with comments, string literals and
    char literals blanked (newlines preserved so line numbers hold).
    allow_map: line number -> set of rule ids allowed on that line,
    collected from comments *before* they are blanked.
    """
    out = []
    allows = {}
    i = 0
    n = len(text)
    line = 1
    state = "code"  # code | line_comment | block_comment | string | char
    comment_buf = []

    def note_allows(buf_text, at_line):
        for m in ALLOW_RE.finditer(buf_text):
            allows.setdefault(at_line, set()).add(m.group(1))

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings would need delimiter tracking; none of
                # the flagged tokens can appear outside code anyway,
                # and the repo style avoids raw literals.
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                # Anchor on the comment's *last* line so a multi-line
                # `// ...` run covers the statement right below it.
                note_allows("".join(comment_buf), line)
                state = "code"
                out.append("\n")
            else:
                comment_buf.append(c)
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                comment_buf.append("")
                note_allows("".join(comment_buf), line)
                state = "code"
                out.append("  ")
                i += 2
                if nxt == "\n":
                    line += 1
                continue
            comment_buf.append(c)
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                if nxt == "\n":
                    line += 1
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        if c == "\n":
            line += 1
        i += 1
    if state == "line_comment":
        note_allows("".join(comment_buf), line)
    return "".join(out).split("\n"), allows


def iter_sources(roots):
    for root in roots:
        base = os.path.join(REPO, root)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.relpath(
                        os.path.join(dirpath, name), REPO
                    ).replace(os.sep, "/")


def check_file_rules(verbose):
    violations = []
    all_roots = sorted({r for rule in RULES.values() for r in rule["roots"]})
    cache = {}
    for rel in iter_sources(all_roots):
        path = os.path.join(REPO, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as e:
            print(f"error: cannot read {rel}: {e}", file=sys.stderr)
            sys.exit(2)
        cache[rel] = strip_code(text)

    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        for rel in iter_sources(rule["roots"]):
            if rel in rule["exempt"]:
                continue
            lines, allows = cache[rel]
            for lineno, code in enumerate(lines, start=1):
                if not rule["pattern"].search(code):
                    continue
                allowed = allows.get(lineno, set()) | allows.get(
                    lineno - 1, set()
                )
                if rule_id in allowed:
                    if verbose:
                        print(f"  allowed {rule_id} {rel}:{lineno}")
                    continue
                violations.append(
                    (rule_id, rel, lineno, rule["summary"], code.strip())
                )
    return violations


def check_compile_commands(db_path, verbose):
    """QS006: every src/tools .cpp must be in the compilation database."""
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    compiled = set()
    for entry in db:
        f = entry.get("file", "")
        if not os.path.isabs(f):
            f = os.path.join(entry.get("directory", ""), f)
        compiled.add(os.path.normpath(f))
    violations = []
    for rel in iter_sources(("src", "tools")):
        if not rel.endswith((".cpp", ".cc")):
            continue
        if os.path.normpath(os.path.join(REPO, rel)) not in compiled:
            violations.append(
                (
                    "QS006",
                    rel,
                    1,
                    "source file absent from the compilation database",
                    "",
                )
            )
        elif verbose:
            print(f"  compiled {rel}")
    return violations


def main():
    parser = argparse.ArgumentParser(
        description="QAOA project-invariant linter (QS00x rules)"
    )
    parser.add_argument(
        "--compile-commands",
        metavar="PATH",
        help="compile_commands.json for QS006 "
        "(default: build/compile_commands.json when present)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            scope = ", ".join(rule["roots"])
            print(f"{rule_id}  {rule['summary']}  [scope: {scope}]")
        print(
            "QS006  source file absent from the compilation database"
            "  [scope: src, tools]"
        )
        return 0

    violations = check_file_rules(args.verbose)

    db_path = args.compile_commands
    if db_path is None:
        candidate = os.path.join(REPO, "build", "compile_commands.json")
        db_path = candidate if os.path.isfile(candidate) else None
    if db_path is not None:
        if not os.path.isfile(db_path):
            print(f"error: no such file: {db_path}", file=sys.stderr)
            return 2
        violations += check_compile_commands(db_path, args.verbose)
    else:
        print(
            "note: no compile_commands.json found; QS006 skipped "
            "(configure a build or pass --compile-commands)"
        )

    if not violations:
        print("check_invariants: OK")
        return 0
    violations.sort()
    for rule_id, rel, lineno, summary, code in violations:
        loc = f"{rel}:{lineno}"
        print(f"{loc}: {rule_id}: {summary}")
        if code:
            print(f"    {code}")
    print(
        f"check_invariants: {len(violations)} violation(s); suppress a "
        "deliberate exception with a qs-allow(QS00x) comment explaining why"
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
