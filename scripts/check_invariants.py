#!/usr/bin/env python3
"""Project-invariant linter: concurrency, persistence and error-path
rules (QS00x / QE10x).

The QAOA serving stack is proved race-free by three complementary
layers: clang's thread-safety analysis (static, per-translation-unit),
ThreadSanitizer (dynamic, whole-program), and this linter — which
enforces the *project conventions* that make the first two layers
sound.  TSA can only check locks it can see, so every lock must be a
sync::Mutex (QS001); crash-safety proofs assume every persistence
write is an atomic rename (QS002); clean shutdown proofs assume no
thread outlives its owner (QS003, QS005); and cancellation-latency
bounds assume no thread blocks in an uncancellable sleep (QS004).

The QE rules make the error paths equally auditable: every exception
either reaches a typed handler or crosses one of the named firewall
boundaries in common/error.hpp — never a silent swallow, never a
terminate() from a destructor, never a dropped [[nodiscard]] Status.

Rules (see DESIGN.md §13/§14 for the catalogue with rationale):

  QS001  No raw std::mutex / std::lock_guard / std::unique_lock /
         std::condition_variable / <mutex> / <condition_variable>
         outside src/common/sync.hpp.  Wrappers carry the capability
         annotations; a raw primitive is invisible to the analysis.
  QS002  No direct write-opens (std::ofstream, fopen "w"/"a") in src/
         outside common/fs.cpp.  Persistence goes through
         fs::atomicWriteFile (temp + rename) so a crash never leaves
         a torn file.
  QS003  No std::thread::detach().  A detached thread cannot be
         joined, so shutdown cannot prove quiescence.
  QS004  No blocking sleeps (sleep_for / sleep_until / usleep /
         nanosleep) in src/ or tools/ outside common/deadline.cpp.
         run::cancellableSleepMs is the one sanctioned sleep; it
         wakes on cancellation.
  QS005  No std::thread construction outside src/common/parallel.*.
         ThreadPool and WorkerGroup are the two thread substrates;
         both guarantee join-on-destruction.
  QS006  Every .cpp under src/ and tools/ appears in the compilation
         database — a file the build does not compile is a file no
         analysis ever sees.  (Skipped unless compile_commands.json
         is found or given via --compile-commands.)
  QS007  No raw fsync / fdatasync / rename calls in src/ or tools/
         outside common/fs.cpp.  Durability has one authority:
         fs::tryAtomicWriteFile owns the fsync-before-rename /
         fsync-dir-after contract and fs::renameFile is the one
         sanctioned move — a stray rename elsewhere silently skips
         both the temp-file discipline and the failpoint coverage.
  QE101  No empty catch bodies anywhere (src, tools, tests, bench).
         A body that is empty once comments are stripped swallows the
         exception; comments do not excuse it — a deliberate swallow
         needs a qe-allow(QE101) waiver saying why.
  QE102  No `catch (...)` in src/ or tools/ outside the firewall
         helpers in common/error.hpp.  exceptionBoundary() and
         friends are the only places allowed to catch everything,
         because they are the only places that re-classify instead of
         swallowing.
  QE103  No `throw` inside a destructor or noexcept function body.
         Throwing there is terminate(); cleanup that can throw wraps
         in destructorBoundary().  (Textual approximation: flags
         bodies introduced by `~T()` or a `noexcept` specifier.)
  QE104  No `(void)` casts in src/ or tools/ — that is the idiom that
         silences [[nodiscard]], and a silenced Status is an ignored
         error.  Deliberate best-effort discards carry a
         qe-allow(QE104) comment naming why ignoring is sound.
         (Tests are exempt: EXPECT_THROW must discard by design.)
  QE105  Every tool main() under tools/ delegates to qaoa::toolMain()
         so an escaped exception becomes the documented fatal exit
         code, not an abort.
  QE106  Failpoint names form a bijection: every failpoint::poll("x")
         in src/ or tools/ names an entry of the catalogue in
         common/failpoint.cpp, each catalogue entry is registered
         exactly once and polled at exactly one site.  A name that
         drifts (typo'd poll, stale catalogue row, copy-pasted site)
         makes QAOA_FAILPOINTS specs silently arm nothing.

Suppression: a `qs-allow(QS00x)` / `qe-allow(QE10x)` comment on the
offending line or the line directly above it waives that rule for that
line; the comment is expected to say why.  Matching is text-based on
comment/string-stripped source — crude but dependency-free, same trade
as scripts/serve_soak.py.

Exit status: 0 clean, 1 violations found, 2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc")

# rule id -> (description, regex on stripped code, roots, exempt paths)
RULES = {
    "QS001": {
        "summary": "raw synchronization primitive outside common/sync.hpp",
        "pattern": re.compile(
            r"std::(recursive_|timed_|shared_)*mutex\b"
            r"|std::lock_guard\b|std::unique_lock\b|std::scoped_lock\b"
            r"|std::shared_lock\b|std::condition_variable\b"
            r"|#\s*include\s*<(mutex|condition_variable|shared_mutex)>"
        ),
        "roots": ("src", "tools"),
        "exempt": ("src/common/sync.hpp",),
    },
    "QS002": {
        "summary": "persistence write bypassing fs::atomicWriteFile",
        # Patterns run on string-stripped code, so fopen's mode string
        # is invisible here; every raw fopen is flagged instead —
        # FILE* access belongs in common/fs, whatever the mode.
        "pattern": re.compile(r"std::ofstream\b|\bfopen\s*\("),
        "roots": ("src",),
        "exempt": ("src/common/fs.cpp",),
    },
    "QS003": {
        "summary": "detached thread (shutdown cannot prove quiescence)",
        "pattern": re.compile(r"\.\s*detach\s*\(\s*\)"),
        "roots": ("src", "tools", "tests", "bench"),
        "exempt": (),
    },
    "QS004": {
        "summary": "blocking sleep bypassing run::cancellableSleepMs",
        "pattern": re.compile(
            r"\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bnanosleep\s*\("
        ),
        "roots": ("src", "tools"),
        "exempt": ("src/common/deadline.cpp",),
    },
    "QS005": {
        "summary": "std::thread outside the common/parallel substrates",
        # std::thread:: (e.g. hardware_concurrency) is a namespace
        # query, not a thread birth; only the bare type is flagged.
        "pattern": re.compile(r"std::thread\b(?!::)"),
        "roots": ("src", "tools"),
        "exempt": ("src/common/parallel.hpp", "src/common/parallel.cpp"),
    },
    "QS007": {
        "summary": "raw fsync/rename outside common/fs.cpp",
        # renameFile( does not match (\brename requires the word to end
        # there); std::rename / ::rename / plain rename( all do.
        "pattern": re.compile(
            r"\bfsync\s*\(|\bfdatasync\s*\(|\brename\s*\("
        ),
        "roots": ("src", "tools"),
        "exempt": ("src/common/fs.cpp",),
    },
    "QE102": {
        "summary": "catch (...) outside the common/error.hpp firewall",
        "pattern": re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)"),
        "roots": ("src", "tools"),
        "exempt": ("src/common/error.hpp",),
    },
    "QE104": {
        "summary": "(void) cast silencing a [[nodiscard]] result",
        # A cast applied to an expression: `(void)expr`.  `f(void)`
        # parameter lists are followed by ')' and do not match.
        "pattern": re.compile(r"\(\s*void\s*\)\s*[A-Za-z_:(]"),
        "roots": ("src", "tools"),
        "exempt": (),
    },
}

# Rule ids implemented as dedicated scanners rather than RULES entries.
SCANNER_RULES = {
    "QE101": "empty catch body (exception swallowed)",
    "QE103": "throw inside a destructor or noexcept body",
    "QE105": "tool main() not wrapped in qaoa::toolMain()",
    "QE106": "failpoint name not registered exactly once",
    "QS006": "source file absent from the compilation database",
}

ALLOW_RE = re.compile(r"q[se]-allow\(\s*(Q[SE]\d{3})\s*\)")


def strip_code(text):
    """Returns (stripped_lines, allow_map).

    stripped_lines: source lines with comments, string literals and
    char literals blanked (newlines preserved so line numbers hold).
    allow_map: line number -> set of rule ids allowed on that line,
    collected from comments *before* they are blanked.
    """
    out = []
    allows = {}
    i = 0
    n = len(text)
    line = 1
    state = "code"  # code | line_comment | block_comment | string | char
    comment_buf = []

    def note_allows(buf_text, at_line):
        for m in ALLOW_RE.finditer(buf_text):
            allows.setdefault(at_line, set()).add(m.group(1))

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings would need delimiter tracking; none of
                # the flagged tokens can appear outside code anyway,
                # and the repo style avoids raw literals.
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                # Anchor on the comment's *last* line so a multi-line
                # `// ...` run covers the statement right below it.
                note_allows("".join(comment_buf), line)
                state = "code"
                out.append("\n")
            else:
                comment_buf.append(c)
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                comment_buf.append("")
                note_allows("".join(comment_buf), line)
                state = "code"
                out.append("  ")
                i += 2
                if nxt == "\n":
                    line += 1
                continue
            comment_buf.append(c)
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                if nxt == "\n":
                    line += 1
                continue
            if c == quote:
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        if c == "\n":
            line += 1
        i += 1
    if state == "line_comment":
        note_allows("".join(comment_buf), line)
    return "".join(out).split("\n"), allows


def iter_sources(roots, repo):
    for root in roots:
        base = os.path.join(repo, root)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.relpath(
                        os.path.join(dirpath, name), repo
                    ).replace(os.sep, "/")


ALL_ROOTS = ("bench", "src", "tests", "tools")


def build_cache(repo):
    """rel path -> (stripped_lines, allow_map) for every known source."""
    cache = {}
    for rel in iter_sources(ALL_ROOTS, repo):
        path = os.path.join(repo, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as e:
            print(f"error: cannot read {rel}: {e}", file=sys.stderr)
            sys.exit(2)
        cache[rel] = strip_code(text)
    return cache


def is_allowed(allows, rule_id, lineno):
    allowed = allows.get(lineno, set()) | allows.get(lineno - 1, set())
    return rule_id in allowed


def check_file_rules(cache, verbose, repo):
    violations = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        for rel in iter_sources(rule["roots"], repo):
            if rel in rule["exempt"]:
                continue
            lines, allows = cache[rel]
            for lineno, code in enumerate(lines, start=1):
                if not rule["pattern"].search(code):
                    continue
                if is_allowed(allows, rule_id, lineno):
                    if verbose:
                        print(f"  allowed {rule_id} {rel}:{lineno}")
                    continue
                violations.append(
                    (rule_id, rel, lineno, rule["summary"], code.strip())
                )
    return violations


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def body_span(text, open_brace):
    """Returns (start, end) of the brace body text[open_brace] opens,
    exclusive of the braces; end == len(text) when unbalanced."""
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return open_brace + 1, i
    return open_brace + 1, len(text)


# `catch (decl)` followed by a body that is blank after stripping.
EMPTY_CATCH_RE = re.compile(r"\bcatch\s*\([^)]*\)\s*\{\s*\}")

# A destructor definition head: `~T(` ... `)` [noexcept[(true)]]
# [override|final] `{`.  Works for both in-class and out-of-class
# definitions because stripping preserves whitespace/newlines.
DTOR_HEAD_RE = re.compile(
    r"~\w+\s*\(\s*\)\s*(?:noexcept\s*(?:\(\s*true\s*\))?\s*)?"
    r"(?:override\s*|final\s*)*\{"
)

# A noexcept specifier directly introducing a body.  `noexcept(expr)`
# conditional specifiers other than (true) deliberately do not match.
NOEXCEPT_HEAD_RE = re.compile(r"\bnoexcept\s*(?:\(\s*true\s*\))?\s*\{")

THROW_RE = re.compile(r"\bthrow\b")

MAIN_DEF_RE = re.compile(r"\bint\s+main\s*\(")
TOOLMAIN_CALL_RE = re.compile(r"\btoolMain\s*\(")


def check_empty_catches(cache, verbose, repo):
    """QE101: a catch body empty after comment-stripping swallows."""
    violations = []
    for rel in iter_sources(ALL_ROOTS, repo):
        lines, allows = cache[rel]
        text = "\n".join(lines)
        for m in EMPTY_CATCH_RE.finditer(text):
            lineno = line_of(text, m.start())
            # The waiver may sit on the catch line, the line above it,
            # or (the natural spot) as the body's only comment.
            last = line_of(text, m.end() - 1)
            waived = any(
                is_allowed(allows, "QE101", ln)
                for ln in range(lineno, last + 1)
            )
            if waived:
                if verbose:
                    print(f"  allowed QE101 {rel}:{lineno}")
                continue
            violations.append(
                (
                    "QE101",
                    rel,
                    lineno,
                    SCANNER_RULES["QE101"],
                    " ".join(m.group(0).split()),
                )
            )
    return violations


def check_noexcept_throws(cache, verbose, repo):
    """QE103: `throw` under a destructor or noexcept body terminates."""
    violations = []
    for rel in iter_sources(("src", "tools"), repo):
        lines, allows = cache[rel]
        text = "\n".join(lines)
        seen_bodies = set()
        heads = list(DTOR_HEAD_RE.finditer(text)) + list(
            NOEXCEPT_HEAD_RE.finditer(text)
        )
        for head in heads:
            open_brace = head.end() - 1
            if open_brace in seen_bodies:
                continue
            seen_bodies.add(open_brace)
            start, end = body_span(text, open_brace)
            for m in THROW_RE.finditer(text, start, end):
                lineno = line_of(text, m.start())
                if is_allowed(allows, "QE103", lineno):
                    if verbose:
                        print(f"  allowed QE103 {rel}:{lineno}")
                    continue
                violations.append(
                    (
                        "QE103",
                        rel,
                        lineno,
                        SCANNER_RULES["QE103"],
                        lines[lineno - 1].strip(),
                    )
                )
    return violations


def check_tool_mains(cache, verbose, repo):
    """QE105: every tools/ main() must delegate to qaoa::toolMain()."""
    violations = []
    for rel in iter_sources(("tools",), repo):
        if not rel.endswith((".cpp", ".cc")):
            continue
        lines, allows = cache[rel]
        text = "\n".join(lines)
        main_def = MAIN_DEF_RE.search(text)
        if main_def is None:
            continue
        if TOOLMAIN_CALL_RE.search(text):
            if verbose:
                print(f"  firewalled main {rel}")
            continue
        lineno = line_of(text, main_def.start())
        if is_allowed(allows, "QE105", lineno):
            if verbose:
                print(f"  allowed QE105 {rel}:{lineno}")
            continue
        violations.append(
            (
                "QE105",
                rel,
                lineno,
                SCANNER_RULES["QE105"],
                lines[lineno - 1].strip(),
            )
        )
    return violations


def strip_comments_keep_strings(text):
    """Blanks // and /* */ comments but PRESERVES string literals.

    The QE106 scanner matches failpoint names, which live inside string
    literals — the shared strip_code() blanks those, so this dedicated
    pass keeps them while still ignoring names that only appear in
    comments.  Newlines are preserved so line numbers hold.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string | char
            out.append(c)
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(text[i + 1] if i + 1 < n else "")
                i += 2
                continue
            if c == quote:
                state = "code"
        i += 1
    return "".join(out)


FAILPOINT_IMPL = "src/common/failpoint.cpp"
CATALOGUE_RE = re.compile(r"kFailpointCatalogue\[\]\s*=\s*\{(.*?)\};", re.S)
CATALOGUE_NAME_RE = re.compile(r'"([^"]+)"')
POLL_RE = re.compile(r'failpoint::poll\(\s*"([^"]*)"')


def check_failpoint_registry(cache, verbose, repo):
    """QE106: poll sites <-> catalogue entries must be a bijection."""

    def read_keeping_strings(rel):
        path = os.path.join(repo, rel)
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                return strip_comments_keep_strings(fh.read())
        except OSError as e:
            print(f"error: cannot read {rel}: {e}", file=sys.stderr)
            sys.exit(2)

    summary = SCANNER_RULES["QE106"]
    sites = {}  # name -> [(rel, lineno), ...] in walk order
    for rel in iter_sources(("src", "tools"), repo):
        if rel == FAILPOINT_IMPL:
            continue  # The registry implementation, not a site.
        code = read_keeping_strings(rel)
        for m in POLL_RE.finditer(code):
            sites.setdefault(m.group(1), []).append(
                (rel, line_of(code, m.start()))
            )

    catalogue = []  # (name, lineno) in declaration order
    impl_rel = FAILPOINT_IMPL
    if os.path.isfile(os.path.join(repo, impl_rel)):
        code = read_keeping_strings(impl_rel)
        m = CATALOGUE_RE.search(code)
        if m is not None:
            for name_m in CATALOGUE_NAME_RE.finditer(m.group(1)):
                catalogue.append(
                    (
                        name_m.group(1),
                        line_of(code, m.start(1) + name_m.start()),
                    )
                )
    if not catalogue and not sites:
        return []  # Tree without failpoints: nothing to check.

    violations = []

    def waived(rel, lineno):
        allows = cache.get(rel, ([], {}))[1]
        ok = is_allowed(allows, "QE106", lineno)
        if ok and verbose:
            print(f"  allowed QE106 {rel}:{lineno}")
        return ok

    registered = {}
    for name, lineno in catalogue:
        if name in registered:
            if not waived(impl_rel, lineno):
                violations.append(
                    (
                        "QE106",
                        impl_rel,
                        lineno,
                        summary,
                        f'"{name}" registered more than once',
                    )
                )
        else:
            registered[name] = lineno

    for name in sorted(sites):
        where = sites[name]
        if name not in registered:
            for rel, lineno in where:
                if not waived(rel, lineno):
                    violations.append(
                        (
                            "QE106",
                            rel,
                            lineno,
                            summary,
                            f'poll of unregistered failpoint "{name}"',
                        )
                    )
            continue
        for rel, lineno in where[1:]:
            if not waived(rel, lineno):
                violations.append(
                    (
                        "QE106",
                        rel,
                        lineno,
                        summary,
                        f'failpoint "{name}" polled at more than one site',
                    )
                )

    for name, lineno in sorted(registered.items()):
        if name not in sites and not waived(impl_rel, lineno):
            violations.append(
                (
                    "QE106",
                    impl_rel,
                    lineno,
                    summary,
                    f'registered failpoint "{name}" has no poll site',
                )
            )
    return violations


def check_compile_commands(db_path, verbose, repo):
    """QS006: every src/tools .cpp must be in the compilation database."""
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    compiled = set()
    for entry in db:
        f = entry.get("file", "")
        if not os.path.isabs(f):
            f = os.path.join(entry.get("directory", ""), f)
        compiled.add(os.path.normpath(f))
    violations = []
    for rel in iter_sources(("src", "tools"), repo):
        if not rel.endswith((".cpp", ".cc")):
            continue
        if os.path.normpath(os.path.join(repo, rel)) not in compiled:
            violations.append(
                (
                    "QS006",
                    rel,
                    1,
                    SCANNER_RULES["QS006"],
                    "",
                )
            )
        elif verbose:
            print(f"  compiled {rel}")
    return violations


def run_checks(repo, verbose=False, compile_commands=None):
    """Runs every rule rooted at @p repo; returns (violations, notes)."""
    cache = build_cache(repo)
    violations = check_file_rules(cache, verbose, repo)
    violations += check_empty_catches(cache, verbose, repo)
    violations += check_noexcept_throws(cache, verbose, repo)
    violations += check_tool_mains(cache, verbose, repo)
    violations += check_failpoint_registry(cache, verbose, repo)
    notes = []

    db_path = compile_commands
    if db_path is None:
        candidate = os.path.join(repo, "build", "compile_commands.json")
        db_path = candidate if os.path.isfile(candidate) else None
    if db_path is not None:
        if not os.path.isfile(db_path):
            print(f"error: no such file: {db_path}", file=sys.stderr)
            sys.exit(2)
        violations += check_compile_commands(db_path, verbose, repo)
    else:
        notes.append(
            "note: no compile_commands.json found; QS006 skipped "
            "(configure a build or pass --compile-commands)"
        )
    return violations, notes


def main():
    parser = argparse.ArgumentParser(
        description="QAOA project-invariant linter (QS00x / QE10x rules)"
    )
    parser.add_argument(
        "--compile-commands",
        metavar="PATH",
        help="compile_commands.json for QS006 "
        "(default: build/compile_commands.json when present)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=REPO,
        help="repository root to lint (default: this script's repo)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        catalogue = {
            rule_id: (rule["summary"], ", ".join(rule["roots"]))
            for rule_id, rule in RULES.items()
        }
        catalogue["QE101"] = (SCANNER_RULES["QE101"], ", ".join(ALL_ROOTS))
        catalogue["QE103"] = (SCANNER_RULES["QE103"], "src, tools")
        catalogue["QE105"] = (SCANNER_RULES["QE105"], "tools")
        catalogue["QE106"] = (SCANNER_RULES["QE106"], "src, tools")
        catalogue["QS006"] = (SCANNER_RULES["QS006"], "src, tools")
        for rule_id in sorted(catalogue):
            summary, scope = catalogue[rule_id]
            print(f"{rule_id}  {summary}  [scope: {scope}]")
        return 0

    repo = os.path.abspath(args.root)
    if not os.path.isdir(repo):
        print(f"error: no such directory: {repo}", file=sys.stderr)
        return 2

    violations, notes = run_checks(
        repo, verbose=args.verbose, compile_commands=args.compile_commands
    )
    for note in notes:
        print(note)

    if not violations:
        print("check_invariants: OK")
        return 0
    violations.sort()
    for rule_id, rel, lineno, summary, code in violations:
        loc = f"{rel}:{lineno}"
        print(f"{loc}: {rule_id}: {summary}")
        if code:
            print(f"    {code}")
    print(
        f"check_invariants: {len(violations)} violation(s); suppress a "
        "deliberate exception with a qs-allow(QS00x) / qe-allow(QE10x) "
        "comment explaining why"
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
