#!/usr/bin/env python3
"""Crash-consistency and graceful-drain harness for qaoa_serve.

Runs the real daemon binary through every abort-here failpoint
schedule on the persistence path — the process is killed with
std::_Exit (exit code 86, no flushing, no destructors) at the exact
syscall the schedule names — then restarts it disarmed and asserts the
recovery invariants:

  * the daemon actually died at the injected point (exit code 86),
  * the restart serves every replayed request with a well-formed qbin
    payload (no torn entry is ever served — rename(2) publication
    means a file is whole or absent),
  * nothing is quarantined after an abort schedule (torn TEMP files
    are swept silently; a torn FINAL file would mean the atomic-write
    contract broke),
  * the cache hit rate recovers (entries persisted before the crash
    reload and serve hits).

Then the signal story:

  * SIGTERM mid-flight starts a graceful drain: every response already
    on the wire is a whole frame, the exit code is 0, and a quiesced
    daemon (all requests answered before the signal) answers 100%,
  * SIGPIPE immunity: the daemon survives its client's read end
    vanishing (exit 0 via drain afterwards, not death by signal 13),
  * the "health" frame reports serving status and the armed failpoint
    list.

Usage:
  crash_consistency.py --binary build/src/qaoa_serve [--seed 7]
      [--cache-dir /tmp/qaoa-crash-cache] [--requests 6]
"""

import argparse
import base64
import binascii
import json
import os
import shutil
import signal
import struct
import subprocess
import sys
import tempfile
import time

ABORT_EXIT_CODE = 86  # failpoint::kAbortExitCode

# Every abort-here schedule on the persistence path.  hit counts pick
# different syscalls of the same persist (the first entry's write vs a
# later entry's), so the sweep covers "crash on first byte" through
# "crash after several entries landed".
ABORT_SCHEDULES = [
    "fs.open=abort@hit=1",
    "fs.write=abort@hit=1",
    "fs.write=abort@hit=3",
    "fs.fsync=abort@hit=1",
    "fs.fsync=abort@hit=2",
    "fs.rename=abort@hit=1",
    "fs.dirsync=abort@hit=1",
    "cache.persist=abort@hit=2",
    "cache.reload=abort@hit=1",  # dies during startup reload of a warm dir
]


def write_frame(stream, record):
    payload = json.dumps(
        {k: str(v) for k, v in record.items()}, separators=(",", ":")
    ).encode()
    stream.write(struct.pack(">I", len(payload)) + payload)
    stream.flush()


def read_frame(stream):
    """Returns a parsed frame, None on clean EOF; raises on a torn
    frame — the core no-torn-bytes-on-the-wire assertion."""
    header = stream.read(4)
    if len(header) == 0:
        return None
    if len(header) != 4:
        raise RuntimeError(f"torn frame header ({len(header)} of 4 bytes)")
    (length,) = struct.unpack(">I", header)
    payload = stream.read(length)
    if len(payload) != length:
        raise RuntimeError(
            f"torn frame body ({len(payload)} of {length} bytes)"
        )
    return json.loads(payload.decode())


def check_result_payload(frame):
    """Raises unless a result frame's circuit payload decodes to qbin."""
    if frame.get("type") != "result":
        return
    try:
        blob = base64.b64decode(frame["qbin"], validate=True)
    except (KeyError, binascii.Error, ValueError) as err:
        raise RuntimeError(
            f"result {frame.get('id')}: bad qbin payload: {err}"
        )
    if blob[:4] != b"QBIN":
        raise RuntimeError(
            f"result {frame.get('id')}: payload lacks the QBIN magic "
            "(a torn cache entry was served?)"
        )


def ring_graph(nodes):
    lines = [str(nodes)]
    lines += [f"{i} {(i + 1) % nodes} 1" for i in range(nodes)]
    return "\n".join(lines)


def make_request(rid, seed, nodes=4):
    return {
        "type": "compile",
        "id": rid,
        "tenant": "crash",
        "graph": ring_graph(nodes),
        "device": "linear6",
        "method": "ic",
        "seed": str(seed),
    }


class Daemon:
    def __init__(self, binary, cache_dir, failpoints=None, workers=2):
        argv = [
            binary,
            "--workers",
            str(workers),
            "--cache-dir",
            cache_dir,
        ]
        if failpoints:
            argv += ["--failpoints", failpoints]
        self.proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
        )

    def send(self, record):
        """Best-effort send: a daemon that already died mid-schedule
        closes the pipe, which is an expected outcome here."""
        try:
            write_frame(self.proc.stdin, record)
            return True
        except (BrokenPipeError, OSError):
            return False

    def recv(self):
        return read_frame(self.proc.stdout)

    def await_id(self, want_id, limit=500):
        for _ in range(limit):
            frame = self.recv()
            if frame is None:
                return None
            check_result_payload(frame)
            if frame.get("id", "") == want_id:
                return frame
        raise RuntimeError(f"no frame answered id {want_id!r}")

    def stats(self):
        if not self.send({"type": "stats"}):
            return None
        return self.await_id("")

    def health(self, hid="health-probe"):
        if not self.send({"type": "health", "id": hid}):
            return None
        return self.await_id(hid)

    def shutdown(self):
        self.send({"type": "shutdown"})
        try:
            self.proc.stdin.close()
        except OSError:
            pass
        return self.proc.wait(timeout=60)

    def wait(self, timeout=60):
        try:
            self.proc.stdin.close()
        except (BrokenPipeError, OSError):
            pass
        return self.proc.wait(timeout=timeout)


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def drive_until_death(daemon, base_seed, requests):
    """Sends compile requests until the armed abort kills the daemon
    (or the budget runs out).  Returns the number of whole answers
    observed; raises on any torn frame."""
    answered = 0
    for i in range(requests):
        if not daemon.send(make_request(f"pre{i}", base_seed + i)):
            break
        # Read whatever arrived; EOF means the abort fired mid-persist.
        frame = daemon.await_id(f"pre{i}")
        if frame is None:
            break
        answered += 1
    return answered


def run_abort_schedule(binary, cache_dir, spec, base_seed, requests,
                       warm_seeds):
    daemon = Daemon(binary, cache_dir, failpoints=spec)
    try:
        drive_until_death(daemon, base_seed, requests)
    except RuntimeError as err:
        fail(f"[{spec}] {err}")
    code = daemon.wait()
    if code != ABORT_EXIT_CODE:
        fail(
            f"[{spec}] expected the abort exit code {ABORT_EXIT_CODE}, "
            f"got {code} — the schedule never fired or the daemon "
            "died some other way"
        )

    # Recovery: restart disarmed, replay the same requests, assert the
    # invariants.
    daemon = Daemon(binary, cache_dir)
    try:
        # Re-ask the warm-up problems: entries persisted BEFORE the
        # crash must reload and serve as hits.
        warm_hits = 0
        for i, seed in enumerate(warm_seeds):
            if not daemon.send(make_request(f"rewarm{i}", seed)):
                fail(f"[{spec}] recovered daemon rejected input")
            frame = daemon.await_id(f"rewarm{i}")
            if frame is None:
                fail(f"[{spec}] recovered daemon died during replay")
            if frame.get("type") != "result":
                fail(f"[{spec}] replay answered {frame.get('type')}: {frame}")
            warm_hits += frame.get("cache_hit", "0") == "1"
        # And the problems that were mid-persist when the axe fell
        # must compile cleanly (whether or not their entry survived).
        for i in range(requests):
            if not daemon.send(make_request(f"post{i}", base_seed + i)):
                fail(f"[{spec}] recovered daemon rejected input")
            frame = daemon.await_id(f"post{i}")
            if frame is None:
                fail(f"[{spec}] recovered daemon died during replay")
            if frame.get("type") != "result":
                fail(f"[{spec}] replay answered {frame.get('type')}: {frame}")
        stats = daemon.stats()
        if stats is None:
            fail(f"[{spec}] recovered daemon died before stats")
        quarantined = int(stats["cache_quarantined"])
        if quarantined != 0:
            fail(
                f"[{spec}] {quarantined} entries quarantined after an "
                "abort schedule — a torn final file escaped the "
                "atomic-write contract"
            )
        hit_rate = float.fromhex(stats["cache_hit_rate"])
        loaded = int(stats["cache_loaded"])
        if loaded > 0 and warm_hits == 0:
            fail(
                f"[{spec}] {loaded} entries reloaded but no warm "
                "replay hit — recovery did not actually recover"
            )
        code = daemon.shutdown()
        if code != 0:
            fail(f"[{spec}] clean shutdown exited {code}")
        return loaded, hit_rate
    except RuntimeError as err:
        fail(f"[{spec}] recovery: {err}")


def check_sigterm_drain_quiesced(binary, cache_dir, requests):
    """All requests answered BEFORE the signal: drain must answer 100%
    (there is nothing in flight to lose) and exit 0."""
    daemon = Daemon(binary, cache_dir)
    for i in range(requests):
        if not daemon.send(make_request(f"q{i}", 9_000 + i)):
            fail("[sigterm-quiesced] daemon died during the warm-up")
        if daemon.await_id(f"q{i}") is None:
            fail(f"[sigterm-quiesced] request q{i} never answered")
    daemon.proc.send_signal(signal.SIGTERM)
    # The daemon stops reading, drains (nothing in flight) and exits 0.
    while True:
        frame = daemon.recv()  # raises on a torn frame
        if frame is None:
            break
    code = daemon.wait()
    if code != 0:
        fail(f"[sigterm-quiesced] drain exited {code}, want 0")


def check_sigterm_drain_midflight(binary, cache_dir, requests):
    """SIGTERM lands while requests are in flight: every frame already
    written must be whole, admitted work is answered, exit code 0."""
    daemon = Daemon(binary, cache_dir)
    # Await a health frame first: a SIGTERM that lands before the
    # daemon has installed its handlers would hit the default
    # disposition — that is a harness race, not a daemon bug.
    if daemon.health("ready") is None:
        fail("[sigterm-midflight] daemon died before becoming ready")
    for i in range(requests):
        if not daemon.send(make_request(f"m{i}", 19_000 + i, nodes=8)):
            fail("[sigterm-midflight] daemon died while being loaded")
    daemon.proc.send_signal(signal.SIGTERM)
    answered = 0
    while True:
        try:
            frame = daemon.recv()
        except RuntimeError as err:
            fail(f"[sigterm-midflight] torn frame during drain: {err}")
        if frame is None:
            break
        check_result_payload(frame)
        answered += 1
    code = daemon.wait()
    if code != 0:
        fail(f"[sigterm-midflight] drain exited {code}, want 0")
    if answered > requests:
        fail(f"[sigterm-midflight] {answered} answers for {requests} asks")
    return answered


def check_sigpipe_immunity(binary, cache_dir):
    """The client's read end vanishes mid-service: the daemon must NOT
    die of SIGPIPE — writes fail as structured I/O errors and a later
    SIGTERM still drains to exit 0."""
    daemon = Daemon(binary, cache_dir)
    if (
        not daemon.send(make_request("pipe0", 29_000))
        or daemon.await_id("pipe0") is None
    ):
        fail("[sigpipe] daemon died before the probe")
    daemon.proc.stdout.close()  # the "client" stops reading
    # Push more work whose responses now hit a closed pipe.
    for i in range(3):
        daemon.send(make_request(f"pipe-dead{i}", 29_100 + i))
    time.sleep(0.5)
    if daemon.proc.poll() is not None:
        fail(
            f"[sigpipe] daemon died (code {daemon.proc.poll()}) when "
            "its client vanished — SIGPIPE is not ignored"
        )
    daemon.proc.send_signal(signal.SIGTERM)
    code = daemon.wait()
    if code != 0:
        fail(f"[sigpipe] post-EPIPE drain exited {code}, want 0")


def check_health_frame(binary, cache_dir):
    """The health frame reports serving status and the armed list."""
    spec = "fs.read=errno:EIO@hit=999999999"  # armed, never fires
    daemon = Daemon(binary, cache_dir, failpoints=spec)
    health = daemon.health()
    if health is None:
        fail("[health] daemon died before answering the health frame")
    if health.get("type") != "health":
        fail(f"[health] wrong frame type: {health}")
    if health.get("status") != "serving":
        fail(f"[health] status {health.get('status')!r}, want serving")
    if "fs.read" not in health.get("failpoints", ""):
        fail(
            "[health] armed failpoint missing from the health frame: "
            f"{health.get('failpoints')!r}"
        )
    for key in ("queue_depth", "cache_entries", "scrub_runs"):
        if key not in health:
            fail(f"[health] field {key!r} missing: {health}")
    code = daemon.shutdown()
    if code != 0:
        fail(f"[health] shutdown exited {code}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--binary", default="build/src/qaoa_serve")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument(
        "--requests",
        type=int,
        default=6,
        help="compile requests per schedule (each a distinct problem)",
    )
    args = parser.parse_args()

    if not os.path.exists(args.binary):
        fail(f"binary not found: {args.binary}")

    scratch = args.cache_dir or tempfile.mkdtemp(prefix="qaoa-crash-")
    try:
        # --- abort-schedule sweep -----------------------------------
        for index, spec in enumerate(ABORT_SCHEDULES):
            cache_dir = os.path.join(scratch, f"sched{index}")
            # cache.reload needs a warm directory to die in; give every
            # schedule one so reload work happens on each restart too.
            warm_seeds = [50_000, 50_001]
            warm = Daemon(args.binary, cache_dir)
            for i, seed in enumerate(warm_seeds):
                warm.send(make_request(f"warm{i}", seed))
                if warm.await_id(f"warm{i}") is None:
                    fail(f"[{spec}] warm-up daemon died")
            if warm.shutdown() != 0:
                fail(f"[{spec}] warm-up shutdown failed")

            base_seed = args.seed * 1_000 + index * 100
            loaded, hit_rate = run_abort_schedule(
                args.binary, cache_dir, spec, base_seed, args.requests,
                warm_seeds
            )
            print(
                f"ok [{spec}]: died at 86, recovered, loaded={loaded}, "
                f"hit_rate={hit_rate:.2f}"
            )

        # --- signal story -------------------------------------------
        check_sigterm_drain_quiesced(
            args.binary, os.path.join(scratch, "drain-q"), args.requests
        )
        print("ok [sigterm-quiesced]: 100% answered, exit 0")
        answered = check_sigterm_drain_midflight(
            args.binary, os.path.join(scratch, "drain-m"), args.requests
        )
        print(
            f"ok [sigterm-midflight]: {answered} whole frames, exit 0"
        )
        check_sigpipe_immunity(
            args.binary, os.path.join(scratch, "sigpipe")
        )
        print("ok [sigpipe]: daemon outlived its client, exit 0")
        check_health_frame(args.binary, os.path.join(scratch, "health"))
        print("ok [health]: status + armed failpoints reported")
    finally:
        if args.cache_dir is None:
            shutil.rmtree(scratch, ignore_errors=True)

    print(f"PASS: {len(ABORT_SCHEDULES)} abort schedules + signal story")
    return 0


if __name__ == "__main__":
    sys.exit(main())
