#!/usr/bin/env python3
"""Seeded request-storm soak driver for the qaoa_serve daemon.

Talks the length-prefixed frame protocol (4-byte big-endian length +
one-line flat-JSON record) over the daemon's stdin/stdout.  The storm
mixes repeated (cacheable) and fresh problems across several tenants,
randomly cancels a fraction of requests (abandoned clients), and can
kill the daemon mid-storm (-9) to prove the persisted cache restarts
clean.

Exit code 0 when every assertion below holds:
  * every frame parses and every non-cancelled request is answered,
  * every result payload is a well-formed base64 qbin document (QBIN
    magic after decode),
  * malformed payloads inside well-formed frames (unparseable kv
    record, garbage numeric field, unknown message type) are answered
    with "error" frames carrying the diagnostic code (error_code) and
    — for positional kv parse failures — the byte offset
    (error_offset), after which the daemon still serves results,
  * the cache hit rate is non-zero by the end of the storm,
  * after a kill -9 + restart, the reloaded cache quarantines nothing
    (binary entries reload whole or not at all — a torn write must
    never surface as a loaded entry) and serves at least one hit
    immediately,
  * a legacy v1 text entry planted before the restart is retired
    (renamed *.legacy, counted in cache_retired), not quarantined and
    never loaded.

Usage:
  serve_soak.py --binary build/src/qaoa_serve --seconds 30 \
      --cache-dir /tmp/serve-cache [--kill-restart] [--seed 7]
"""

import argparse
import base64
import binascii
import json
import os
import random
import signal
import struct
import subprocess
import sys
import time


def check_result_payload(frame):
    """Raises unless a result frame's circuit payload decodes to qbin."""
    if frame.get("type") != "result" or "qbin" not in frame:
        return 0
    try:
        blob = base64.b64decode(frame["qbin"], validate=True)
    except (binascii.Error, ValueError) as err:
        raise RuntimeError(
            f"result {frame.get('id')}: qbin payload is not base64: {err}"
        )
    if blob[:4] != b"QBIN":
        raise RuntimeError(
            f"result {frame.get('id')}: payload lacks the QBIN magic"
        )
    return 1


def write_raw_frame(stream, payload):
    stream.write(struct.pack(">I", len(payload)) + payload)
    stream.flush()


def write_frame(stream, record):
    payload = json.dumps(
        {k: str(v) for k, v in record.items()}, separators=(",", ":")
    ).encode()
    write_raw_frame(stream, payload)


def read_frame(stream):
    header = stream.read(4)
    if len(header) == 0:
        return None  # clean EOF
    if len(header) != 4:
        raise RuntimeError("truncated frame header")
    (length,) = struct.unpack(">I", header)
    payload = stream.read(length)
    if len(payload) != length:
        raise RuntimeError("truncated frame body")
    return json.loads(payload.decode())


def ring_edges(n, weight=1.0):
    return ",".join(
        f"{i} {(i + 1) % n} {weight:g}" for i in range(n)
    )


def make_request(rid, tenant, nodes, seed):
    return {
        "type": "compile",
        "id": rid,
        "tenant": tenant,
        "graph": f"{nodes}\n" + ring_edges(nodes).replace(",", "\n"),
        "device": "melbourne",
        "method": "ic",
        "seed": str(seed),
    }


class Daemon:
    def __init__(self, binary, cache_dir, workers=2):
        self.proc = subprocess.Popen(
            [
                binary,
                "--workers",
                str(workers),
                "--queue-capacity",
                "16",
                "--cache-dir",
                cache_dir,
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=sys.stderr.buffer,
        )

    def send(self, record):
        write_frame(self.proc.stdin, record)

    def recv(self):
        return read_frame(self.proc.stdout)

    def stats(self):
        self.send({"type": "stats"})
        while True:
            frame = self.recv()
            if frame is None:
                raise RuntimeError("daemon died while awaiting stats")
            if frame["type"] == "stats":
                return frame

    def shutdown(self):
        self.send({"type": "shutdown"})
        self.proc.stdin.close()
        return self.proc.wait(timeout=60)

    def kill9(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=60)


def await_frame(daemon, want_id):
    """Reads frames until one answers want_id (responses interleave;
    stragglers from cancelled storm requests are skipped)."""
    for _ in range(200):
        frame = daemon.recv()
        if frame is None:
            raise RuntimeError(
                f"daemon died while awaiting an answer for {want_id!r}"
            )
        if frame.get("id", "") == want_id:
            return frame
    raise RuntimeError(f"no frame ever answered id {want_id!r}")


def probe_error_paths(daemon):
    """Injects malformed payloads and asserts each one is answered with
    a structured "error" frame — diagnostic code always, byte offset
    for positional (kv parse) failures — and that the daemon keeps
    serving afterwards.  Returns the number of probes validated."""
    checks = 0

    # (1) Well-framed but unparseable record: the kv parser stops at a
    # byte, so the error frame must carry both the code and the offset.
    write_raw_frame(daemon.proc.stdin, b'{"type":"compile"')
    frame = await_frame(daemon, "")
    if frame.get("type") != "error":
        raise RuntimeError(f"kv garbage not answered with error: {frame}")
    if frame.get("error_code") not in ("malformed", "truncated"):
        raise RuntimeError(f"kv garbage miscoded: {frame}")
    if int(frame.get("error_offset", "-1")) < 0:
        raise RuntimeError(f"kv garbage lost its byte offset: {frame}")
    checks += 1

    # (2) Parseable record, garbage numeric field: classified as a
    # malformed CLIENT input (never internal), answered under its id.
    bad = make_request("probe-bad-seed", "tenant0", 4, 1)
    bad["seed"] = "not-a-number"
    daemon.send(bad)
    frame = await_frame(daemon, "probe-bad-seed")
    if frame.get("type") != "error":
        raise RuntimeError(f"bad numeric field not an error: {frame}")
    if frame.get("error_code") != "malformed":
        raise RuntimeError(f"bad numeric field miscoded: {frame}")
    checks += 1

    # (3) Unknown message type: an out-of-contract request, not a
    # parse failure — invalid_argument, no offset.
    daemon.send({"type": "frobnicate", "id": "probe-unknown"})
    frame = await_frame(daemon, "probe-unknown")
    if frame.get("type") != "error":
        raise RuntimeError(f"unknown type not an error: {frame}")
    if frame.get("error_code") != "invalid_argument":
        raise RuntimeError(f"unknown type miscoded: {frame}")
    checks += 1

    # One confused client must not take the service down: a healthy
    # request right after the abuse must still produce a result.
    daemon.send(make_request("probe-after", "tenant0", 4, 123_456))
    frame = await_frame(daemon, "probe-after")
    if frame.get("type") != "result" or check_result_payload(frame) != 1:
        raise RuntimeError(
            f"daemon stopped serving after malformed payloads: {frame}"
        )
    checks += 1
    return checks


def storm(daemon, rng, seconds):
    """Drives a seeded storm; returns (sent, answered, cancelled,
    payloads) where payloads counts validated qbin result bodies."""
    deadline = time.monotonic() + seconds
    sent = 0
    payloads = 0
    cancelled = set()
    answered = set()
    pending = set()
    while time.monotonic() < deadline:
        for _ in range(rng.randint(1, 6)):
            rid = f"req{sent}"
            tenant = f"tenant{rng.randint(0, 3)}"
            # 70% replay one of 4 cacheable problems, 30% fresh seeds.
            if rng.random() < 0.7:
                seed = 100 + rng.randint(0, 3)
            else:
                seed = 10_000 + sent
            nodes = rng.choice([4, 6, 8])
            daemon.send(make_request(rid, tenant, nodes, seed))
            pending.add(rid)
            sent += 1
            # A slice of clients gives up immediately (abandoned work).
            if rng.random() < 0.15:
                daemon.send({"type": "cancel", "id": rid})
                cancelled.add(rid)
        # Drain what has been answered so far.
        daemon.send({"type": "stats"})
        while True:
            frame = daemon.recv()
            if frame is None:
                raise RuntimeError("daemon died mid-storm")
            if frame["type"] == "stats":
                break
            payloads += check_result_payload(frame)
            answered.add(frame.get("id", ""))
            pending.discard(frame.get("id", ""))
        time.sleep(0.01)
    # Let the backlog drain: poll until nothing non-cancelled pends.
    for _ in range(600):
        remaining = pending - cancelled
        if not remaining:
            break
        daemon.send({"type": "stats"})
        while True:
            frame = daemon.recv()
            if frame is None:
                raise RuntimeError("daemon died while draining")
            if frame["type"] == "stats":
                break
            payloads += check_result_payload(frame)
            answered.add(frame.get("id", ""))
            pending.discard(frame.get("id", ""))
        time.sleep(0.05)
    remaining = pending - cancelled
    if remaining:
        raise RuntimeError(
            f"{len(remaining)} requests never answered: "
            f"{sorted(remaining)[:5]}..."
        )
    return sent, answered, cancelled, payloads


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--binary", required=True)
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--seconds", type=float, default=30.0)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="cap the storm at 10 s total — the CI TSan lane uses this "
        "(TSan's slowdown makes the full 30 s storm needlessly long; "
        "race windows repeat every few requests, not every few seconds)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--kill-restart", action="store_true")
    args = parser.parse_args()
    if args.quick:
        args.seconds = min(args.seconds, 10.0)

    rng = random.Random(args.seed)
    os.makedirs(args.cache_dir, exist_ok=True)

    daemon = Daemon(args.binary, args.cache_dir)
    phase1 = args.seconds * (0.5 if args.kill_restart else 1.0)
    sent, answered, cancelled, payloads = storm(daemon, rng, phase1)
    stats = daemon.stats()
    hit_rate = float.fromhex(stats["cache_hit_rate"])
    print(
        f"soak: sent {sent}, answered {len(answered)}, "
        f"cancelled {len(cancelled)}, qbin payloads {payloads}, "
        f"hit rate {hit_rate:.2f}",
        file=sys.stderr,
    )
    if hit_rate <= 0.0:
        print("FAIL: cache hit rate is zero", file=sys.stderr)
        return 1
    if payloads == 0:
        print("FAIL: no result carried a qbin payload", file=sys.stderr)
        return 1

    probes = probe_error_paths(daemon)
    print(
        f"soak: {probes} malformed-payload probes answered with "
        "coded error frames",
        file=sys.stderr,
    )

    if args.kill_restart:
        # Plant a healthy old-format (v1, text QASM) entry: its angles
        # are rounded, so the restarted daemon must retire it — rename
        # it aside and recompile — never load or quarantine it.
        legacy = os.path.join(args.cache_dir, "00feed0123456789.cce")
        with open(legacy, "w") as fh:
            fh.write(
                '{"format":"qaoa-serve-cache-v1",'
                '"key":"00feed0123456789",'
                '"canonical":"canon:legacy","status":"ok",'
                '"qasm":"OPENQASM 2.0;\\n","depth":"1",'
                '"gate_count":"1","cx_count":"0","swap_count":"0",'
                '"compile_ms":"0x1p+0"}'
            )
        # Kill -9 with compiles in flight, restart, and require a
        # clean cache: a burst of un-drained fresh requests guarantees
        # workers are mid-write when the signal lands.
        for i in range(20):
            daemon.send(
                make_request(f"doomed{i}", "tenant0", 8, 90_000 + i)
            )
        daemon.kill9()
        daemon = Daemon(args.binary, args.cache_dir)
        sent2, answered2, cancelled2, payloads2 = storm(
            daemon, rng, args.seconds - phase1
        )
        stats = daemon.stats()
        if int(stats["cache_quarantined"]) != 0:
            print(
                f"FAIL: {stats['cache_quarantined']} corrupt cache "
                "entries after kill -9",
                file=sys.stderr,
            )
            return 1
        if int(stats["cache_loaded"]) == 0:
            print("FAIL: restart loaded no cache entries", file=sys.stderr)
            return 1
        if int(stats["cache_retired"]) < 1:
            print(
                "FAIL: planted legacy v1 entry was not retired",
                file=sys.stderr,
            )
            return 1
        if not os.path.exists(legacy + ".legacy") or os.path.exists(legacy):
            print(
                "FAIL: legacy entry not renamed aside to *.legacy",
                file=sys.stderr,
            )
            return 1
        hit_rate = float.fromhex(stats["cache_hit_rate"])
        print(
            f"soak(restart): sent {sent2}, answered {len(answered2)}, "
            f"loaded {stats['cache_loaded']}, "
            f"retired {stats['cache_retired']}, "
            f"qbin payloads {payloads2}, hit rate {hit_rate:.2f}",
            file=sys.stderr,
        )
        if hit_rate <= 0.0:
            print("FAIL: no hits after restart", file=sys.stderr)
            return 1
        if payloads2 == 0:
            print(
                "FAIL: no qbin payloads after restart", file=sys.stderr
            )
            return 1

    code = daemon.shutdown()
    if code != 0:
        print(f"FAIL: daemon exited {code}", file=sys.stderr)
        return 1
    print("soak: OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
