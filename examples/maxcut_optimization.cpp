/**
 * @file
 * Full QAOA-MaxCut workflow: parameter optimization in noiseless
 * simulation, compilation for hardware, and sampled solution extraction —
 * the §V-G experimental flow end to end.
 */

#include <algorithm>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "hardware/devices.hpp"
#include "metrics/approx_ratio.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"
#include "sim/statevector.hpp"

int
main()
{
    using namespace qaoa;

    // Problem: a 10-node Erdős–Rényi graph with edge probability 0.5.
    Rng rng(7);
    graph::Graph problem = graph::erdosRenyi(10, 0.5, rng);
    graph::MaxCutResult exact = graph::maxCutBruteForce(problem);
    std::cout << "problem: 10-node ER(0.5) graph, " << problem.numEdges()
              << " edges, exact MaxCut = " << exact.value << "\n";

    // Step 1 (§V-G): find optimal (gamma, beta) in noiseless simulation.
    metrics::P1Parameters params = metrics::optimizeP1(problem);
    std::cout << "optimal parameters: gamma = " << params.gamma
              << ", beta = " << params.beta
              << " (noiseless expected cut " << params.expected_cut
              << ")\n";

    // Step 2: compile for ibmq_20_tokyo with IC (+QAIM).
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.gammas = {params.gamma};
    opts.betas = {params.beta};
    transpiler::CompileResult compiled =
        core::compileQaoaMaxcut(problem, tokyo, opts);
    std::cout << "compiled for " << tokyo.name() << ": depth "
              << compiled.report.depth << ", " << compiled.report.gate_count
              << " gates\n";

    // Step 3: sample the compiled circuit and take the best cut seen.
    Rng sampler(99);
    sim::Counts counts = sim::runAndSample(compiled.compiled, 4096,
                                           sampler);
    double r0 = metrics::approximationRatio(problem, counts, exact.value);
    double best_cut = 0.0;
    std::uint64_t best_bits = 0;
    for (const auto &[bits, count] : counts) {
        double cut = graph::cutValue(problem, bits);
        if (cut > best_cut) {
            best_cut = cut;
            best_bits = bits;
        }
    }
    std::cout << "sampled 4096 shots: approximation ratio = " << r0
              << "\n"
              << "best sampled cut = " << best_cut << " / " << exact.value
              << " (assignment 0b";
    for (int b = problem.numNodes() - 1; b >= 0; --b)
        std::cout << ((best_bits >> b) & 1);
    std::cout << ")\n";

    return best_cut >= 0.8 * exact.value ? 0 : 1;
}
