/**
 * @file
 * Quickstart: compile a QAOA-MaxCut circuit for an IBM device in a few
 * lines.
 *
 * Builds the MaxCut instance of a small random 3-regular graph, compiles
 * it with the paper's best general-purpose pipeline (QAIM initial mapping
 * + incremental compilation), and prints the quality metrics plus the
 * first lines of the OpenQASM output.
 */

#include <iostream>
#include <sstream>

#include "circuit/draw.hpp"
#include "circuit/qasm.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/api.hpp"

int
main()
{
    using namespace qaoa;

    // 1. A MaxCut problem: random 3-regular graph on 8 nodes.
    Rng rng(2026);
    graph::Graph problem = graph::randomRegular(8, 3, rng);
    std::cout << "problem: 8-node 3-regular graph, " << problem.numEdges()
              << " edges\n";

    // 2. A target device: the 15-qubit ibmq_16_melbourne.
    hw::CouplingMap device = hw::ibmqMelbourne15();

    // 3. Compile with IC (+QAIM), p = 1, default angles.
    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.gammas = {0.7};
    opts.betas = {0.35};
    transpiler::CompileResult result =
        core::compileQaoaMaxcut(problem, device, opts);

    std::cout << "method:        IC (+QAIM)\n"
              << "device:        " << device.name() << "\n"
              << "depth:         " << result.report.depth << "\n"
              << "gate count:    " << result.report.gate_count << "\n"
              << "CNOTs:         " << result.report.cx_count << "\n"
              << "SWAPs added:   " << result.report.swap_count << "\n"
              << "compile time:  " << result.report.compile_seconds * 1e3
              << " ms\n"
              << "initial map:   " << result.initial_layout.toString()
              << "\n"
              << "final map:     " << result.final_layout.toString()
              << "\n\n";

    // 4. Visualize the logical circuit (undecomposed, for readability).
    core::QaoaCompileOptions raw = opts;
    raw.decompose_to_basis = false;
    transpiler::CompileResult undecomposed =
        core::compileQaoaMaxcut(problem, device, raw);
    circuit::DrawOptions draw_opts;
    draw_opts.max_columns = 100;
    std::cout << "compiled circuit (high-level gates, truncated):\n"
              << circuit::drawCircuit(undecomposed.compiled, draw_opts)
              << "\n";

    // 5. Export to OpenQASM (first 12 lines shown).
    std::istringstream qasm(circuit::toQasm(result.compiled));
    std::string line;
    std::cout << "OpenQASM head:\n";
    for (int i = 0; i < 12 && std::getline(qasm, line); ++i)
        std::cout << "  " << line << "\n";
    return 0;
}
