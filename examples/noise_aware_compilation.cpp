/**
 * @file
 * Variation-aware compilation in action: IC vs VIC on ibmq_16_melbourne
 * with the Fig. 10(a) calibration snapshot.  Shows the success
 * probability gain and the resulting ARG improvement under the noisy
 * hardware stand-in (Monte-Carlo depolarizing simulation).
 */

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "hardware/devices.hpp"
#include "metrics/approx_ratio.hpp"
#include "metrics/harness.hpp"
#include "qaoa/api.hpp"
#include "sim/noise.hpp"
#include "sim/success.hpp"

int
main()
{
    using namespace qaoa;

    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CalibrationData calib = hw::melbourneCalibration(melbourne);

    Rng rng(2020);
    graph::Graph problem = graph::erdosRenyi(10, 0.5, rng);
    double optimum = graph::maxCutBruteForce(problem).value;
    metrics::P1Parameters params = metrics::optimizeP1(problem);
    std::cout << "problem: 10-node ER(0.5), " << problem.numEdges()
              << " edges; optimal gamma = " << params.gamma
              << ", beta = " << params.beta << "\n\n";

    Table table({"method", "depth", "gates", "success prob", "r0", "rh",
                 "ARG %"});
    for (core::Method m : {core::Method::Ic, core::Method::Vic}) {
        core::QaoaCompileOptions opts;
        opts.method = m;
        opts.calibration = &calib;
        opts.gammas = {params.gamma};
        opts.betas = {params.beta};
        opts.seed = 4;
        transpiler::CompileResult r =
            core::compileQaoaMaxcut(problem, melbourne, opts);

        double sp = sim::successProbability(r.compiled, calib);

        Rng sample_rng(17);
        sim::Counts ideal =
            sim::runAndSample(r.compiled, 8192, sample_rng);
        double r0 = metrics::approximationRatio(problem, ideal, optimum);

        sim::NoiseOptions nopts;
        nopts.trajectories = 24;
        sim::Counts noisy =
            sim::noisySample(r.compiled, calib, 8192, sample_rng, nopts);
        double rh = metrics::approximationRatio(problem, noisy, optimum);

        table.addRow({core::methodName(m),
                      Table::num(static_cast<long long>(r.report.depth)),
                      Table::num(static_cast<long long>(
                          r.report.gate_count)),
                      Table::num(sp, 4), Table::num(r0, 3),
                      Table::num(rh, 3),
                      Table::num(metrics::approximationRatioGap(r0, rh),
                                 2)});
    }
    table.print(std::cout);
    std::cout << "\nVIC routes around the weak couplings reported in the\n"
                 "calibration snapshot, trading the same depth/gate count\n"
                 "for a higher product-of-success-rates and a smaller\n"
                 "approximation-ratio gap on noisy execution.\n";
    return 0;
}
