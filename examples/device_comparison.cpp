/**
 * @file
 * Compares the six compilation methodologies across the paper's three
 * device classes (ibmq_20_tokyo, ibmq_16_melbourne, 6x6 grid) on one
 * problem instance — a miniature of the §V evaluation.
 */

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/api.hpp"

int
main()
{
    using namespace qaoa;

    Rng rng(11);
    graph::Graph problem = graph::randomRegular(12, 3, rng);
    std::cout << "problem: 12-node 3-regular MaxCut instance ("
              << problem.numEdges() << " edges), p = 1\n\n";

    const core::Method methods[] = {
        core::Method::Naive, core::Method::GreedyV, core::Method::Qaim,
        core::Method::Ip,    core::Method::Ic,      core::Method::Vic,
    };

    struct Target
    {
        hw::CouplingMap map;
        hw::CalibrationData calib;
    };
    hw::CouplingMap tokyo = hw::ibmqTokyo20();
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CouplingMap grid = hw::gridDevice(6, 6);
    Rng calib_rng(5);
    Target targets[] = {
        {tokyo, hw::randomCalibration(tokyo, calib_rng)},
        {melbourne, hw::melbourneCalibration(melbourne)},
        {grid, hw::randomCalibration(grid, calib_rng)},
    };

    for (const Target &target : targets) {
        Table table({"method", "depth", "gates", "CNOTs", "SWAPs",
                     "compile ms"});
        for (core::Method m : methods) {
            core::QaoaCompileOptions opts;
            opts.method = m;
            opts.calibration = &target.calib;
            opts.seed = 21;
            transpiler::CompileResult r =
                core::compileQaoaMaxcut(problem, target.map, opts);
            table.addRow({core::methodName(m),
                          Table::num(static_cast<long long>(
                              r.report.depth)),
                          Table::num(static_cast<long long>(
                              r.report.gate_count)),
                          Table::num(static_cast<long long>(
                              r.report.cx_count)),
                          Table::num(static_cast<long long>(
                              r.report.swap_count)),
                          Table::num(r.report.compile_seconds * 1e3, 2)});
        }
        std::cout << "=== " << target.map.name() << " ===\n";
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
