/**
 * @file
 * Beyond MaxCut (§VI): QAOA for arbitrary Ising cost Hamiltonians.
 *
 * Encodes minimum vertex cover and number partitioning as Ising models,
 * compiles them with IC (+QAIM) for ibmq_16_melbourne, and verifies by
 * simulation that QAOA concentrates probability on the true optimum.
 */

#include <algorithm>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "hardware/devices.hpp"
#include "qaoa/api.hpp"
#include "qaoa/ising.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qaoa;

/** Compiles, samples, and reports how often the optimum is hit. */
void
solve(const std::string &name, const core::IsingModel &model,
      double gamma, double beta)
{
    hw::CouplingMap melbourne = hw::ibmqMelbourne15();
    hw::CalibrationData calib = hw::melbourneCalibration(melbourne);

    core::QaoaCompileOptions opts;
    opts.method = core::Method::Ic;
    opts.calibration = &calib;
    opts.gammas = {gamma};
    opts.betas = {beta};
    transpiler::CompileResult r =
        core::compileQaoaIsing(model, melbourne, opts);

    Rng rng(31);
    sim::Counts counts = sim::runAndSample(r.compiled, 4096, rng);

    core::IsingModel::GroundState gs = model.groundState();
    std::uint64_t hits = 0, total = 0;
    double best_seen = 1e300;
    for (const auto &[bits, count] : counts) {
        total += count;
        double e = model.energy(bits);
        best_seen = std::min(best_seen, e);
        if (e <= gs.energy + 1e-9)
            hits += count;
    }
    std::cout << name << ":\n"
              << "  spins " << model.numSpins() << ", quadratic terms "
              << model.quadraticOps().size() << "\n"
              << "  compiled depth " << r.report.depth << ", gates "
              << r.report.gate_count << "\n"
              << "  ground energy " << gs.energy << ", best sampled "
              << best_seen << "\n"
              << "  optimum sampled in "
              << 100.0 * static_cast<double>(hits) /
                     static_cast<double>(total)
              << "% of 4096 shots\n\n";
}

} // namespace

int
main()
{
    using namespace qaoa;

    // 1. Minimum vertex cover of a random graph.
    Rng rng(8);
    graph::Graph g = graph::erdosRenyi(8, 0.35, rng);
    solve("minimum vertex cover (8-node ER graph)",
          core::vertexCoverToIsing(g, 3.0), 0.35, 0.45);

    // 2. Number partitioning.
    solve("number partitioning {5, 4, 3, 2, 2, 1, 1}",
          core::partitionToIsing({5, 4, 3, 2, 2, 1, 1}), 0.06, 0.4);

    // 3. MaxCut expressed through the Ising route (consistency check
    //    with the direct API).
    graph::Graph cut_graph = graph::randomRegular(10, 3, rng);
    solve("maxcut via Ising encoding (10-node 3-regular)",
          core::maxcutToIsing(cut_graph), 0.7, 0.35);
    return 0;
}
